/**
 * @file
 * Unit tests for Irving's stable-roommates algorithm and Cooper's
 * adapted variant, cross-checked against brute force on small
 * instances.
 */

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "matching/blocking.hh"
#include "matching/stable_roommates.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace cooper {
namespace {

/** Complete random roommate preferences for n agents. */
PreferenceProfile
randomRoommatePrefs(std::size_t n, Rng &rng)
{
    std::vector<std::vector<AgentId>> lists(n);
    for (AgentId i = 0; i < n; ++i) {
        for (AgentId j = 0; j < n; ++j)
            if (j != i)
                lists[i].push_back(j);
        rng.shuffle(lists[i]);
    }
    return PreferenceProfile(std::move(lists), n);
}

/** Brute force: does any perfect stable matching exist? */
bool
bruteForceHasStable(const PreferenceProfile &prefs)
{
    const std::size_t n = prefs.agents();
    std::vector<AgentId> partner(n, kUnmatched);

    std::function<bool()> recurse = [&]() -> bool {
        AgentId a = kUnmatched;
        for (AgentId i = 0; i < n; ++i) {
            if (partner[i] == kUnmatched) {
                a = i;
                break;
            }
        }
        if (a == kUnmatched) {
            Matching m(n);
            for (AgentId i = 0; i < n; ++i)
                if (i < partner[i])
                    m.pair(i, partner[i]);
            return isStableMatching(m, prefs);
        }
        for (AgentId b = a + 1; b < n; ++b) {
            if (partner[b] != kUnmatched)
                continue;
            partner[a] = b;
            partner[b] = a;
            if (recurse())
                return true;
            partner[a] = kUnmatched;
            partner[b] = kUnmatched;
        }
        return false;
    };
    return recurse();
}

TEST(StableRoommates, TextbookSolvableInstance)
{
    // Classic 6-agent instance (Irving 1985) with a stable matching
    // {0-5, 1-2, 3-4} (0-indexed from the 1-indexed original).
    PreferenceProfile prefs({{3, 5, 1, 4, 2},
                             {5, 2, 4, 0, 3},
                             {1, 4, 3, 5, 0},
                             {2, 5, 0, 1, 4},
                             {0, 3, 2, 5, 1},
                             {4, 1, 3, 0, 2}},
                            6);
    const auto matching = stableRoommates(prefs);
    ASSERT_TRUE(matching.has_value());
    EXPECT_TRUE(matching->isPerfect());
    EXPECT_TRUE(isStableMatching(*matching, prefs));
}

TEST(StableRoommates, ClassicUnsolvableInstance)
{
    // Four agents where 0, 1, 2 cyclically prefer each other and all
    // rank 3 last: every matching has a blocking pair.
    PreferenceProfile prefs({{1, 2, 3},
                             {2, 0, 3},
                             {0, 1, 3},
                             {0, 1, 2}},
                            4);
    EXPECT_FALSE(bruteForceHasStable(prefs));
    EXPECT_FALSE(stableRoommates(prefs).has_value());
}

TEST(StableRoommates, TwoAgentsTrivial)
{
    PreferenceProfile prefs({{1}, {0}}, 2);
    const auto matching = stableRoommates(prefs);
    ASSERT_TRUE(matching.has_value());
    EXPECT_EQ(matching->partnerOf(0), 1u);
}

TEST(StableRoommates, OddPopulationFatal)
{
    PreferenceProfile prefs({{1, 2}, {0, 2}, {0, 1}}, 3);
    EXPECT_THROW(stableRoommates(prefs), FatalError);
}

TEST(StableRoommates, IncompleteListFatal)
{
    PreferenceProfile prefs({{1}, {0}, {0}, {0}}, 4);
    EXPECT_THROW(stableRoommates(prefs), FatalError);
}

TEST(StableRoommates, AgreesWithBruteForceOnRandomInstances)
{
    Rng rng(2024);
    int solvable = 0, unsolvable = 0;
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t n = 2 * (1 + rng.uniformInt(std::uint64_t(4)));
        const PreferenceProfile prefs = randomRoommatePrefs(n, rng);
        const auto matching = stableRoommates(prefs);
        const bool exists = bruteForceHasStable(prefs);
        EXPECT_EQ(matching.has_value(), exists) << "trial " << trial;
        if (matching.has_value()) {
            ++solvable;
            EXPECT_TRUE(matching->isPerfect());
            EXPECT_TRUE(isStableMatching(*matching, prefs))
                << "trial " << trial;
        } else {
            ++unsolvable;
        }
    }
    // Random instances of these sizes include both kinds.
    EXPECT_GT(solvable, 0);
    EXPECT_GT(unsolvable, 0);
}

TEST(AdaptedRoommates, MatchesEveryoneOnEvenPopulations)
{
    Rng rng(7);
    auto d = [](AgentId a, AgentId b) {
        return static_cast<double>((a * 31 + b * 17) % 101) / 101.0;
    };
    for (int trial = 0; trial < 40; ++trial) {
        const std::size_t n = 2 * (1 + rng.uniformInt(std::uint64_t(10)));
        const PreferenceProfile prefs = randomRoommatePrefs(n, rng);
        const RoommatesResult result = adaptedRoommates(prefs, d);
        EXPECT_TRUE(result.matching.isPerfect()) << "trial " << trial;
        EXPECT_TRUE(result.matching.consistent());
    }
}

TEST(AdaptedRoommates, PerfectlyStableWhenIrvingSolves)
{
    PreferenceProfile prefs({{3, 5, 1, 4, 2},
                             {5, 2, 4, 0, 3},
                             {1, 4, 3, 5, 0},
                             {2, 5, 0, 1, 4},
                             {0, 3, 2, 5, 1},
                             {4, 1, 3, 0, 2}},
                            6);
    auto d = [](AgentId, AgentId) { return 0.5; };
    const RoommatesResult result = adaptedRoommates(prefs, d);
    EXPECT_TRUE(result.perfectlyStable);
    EXPECT_TRUE(result.fallbackAgents.empty());
    EXPECT_TRUE(isStableMatching(result.matching, prefs));
}

TEST(AdaptedRoommates, FallbackEngagesOnUnsolvableInstance)
{
    PreferenceProfile prefs({{1, 2, 3},
                             {2, 0, 3},
                             {0, 1, 3},
                             {0, 1, 2}},
                            4);
    auto d = [](AgentId a, AgentId b) {
        return 0.1 * static_cast<double>(a + b);
    };
    const RoommatesResult result = adaptedRoommates(prefs, d);
    EXPECT_FALSE(result.perfectlyStable);
    EXPECT_FALSE(result.fallbackAgents.empty());
    EXPECT_TRUE(result.matching.isPerfect());
}

TEST(AdaptedRoommates, FewBlockingPairsOnLargePopulations)
{
    // The adapted algorithm should leave dramatically fewer blocking
    // pairs than random pairing on the same preferences.
    Rng rng(99);
    const std::size_t n = 100;
    const PreferenceProfile prefs = randomRoommatePrefs(n, rng);
    // Disutility consistent with the preference lists.
    std::vector<std::vector<double>> d_table(
        n, std::vector<double>(n, 0.0));
    for (AgentId i = 0; i < n; ++i)
        for (AgentId j = 0; j < n; ++j)
            if (i != j)
                d_table[i][j] =
                    static_cast<double>(prefs.rankOf(i, j)) /
                    static_cast<double>(n);
    auto d = [&](AgentId a, AgentId b) { return d_table[a][b]; };

    const RoommatesResult result = adaptedRoommates(prefs, d);
    EXPECT_TRUE(result.matching.isPerfect());
    const std::size_t adapted_blocking =
        countBlockingPairs(result.matching, d, 0.0);

    Matching random_pairing(n);
    auto perm = rng.permutation(n);
    for (std::size_t k = 0; k < n; k += 2)
        random_pairing.pair(perm[k], perm[k + 1]);
    const std::size_t random_blocking =
        countBlockingPairs(random_pairing, d, 0.0);

    EXPECT_LT(adapted_blocking, random_blocking / 10 + 1);
}

TEST(AdaptedRoommates, OddPopulationLeavesOneUnmatched)
{
    Rng rng(5);
    const PreferenceProfile prefs = randomRoommatePrefs(7, rng);
    auto d = [](AgentId, AgentId) { return 0.1; };
    const RoommatesResult result = adaptedRoommates(prefs, d);
    EXPECT_EQ(result.matching.pairCount(), 3u);
}

} // namespace
} // namespace cooper
