/**
 * @file
 * Unit tests for the fixed-size worker pool and its deterministic
 * parallel loops. These (and test_determinism) also run under
 * ThreadSanitizer via the `tsan` ctest label.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hh"

namespace cooper {
namespace {

TEST(ThreadPool, EmptyRangeIsANoop)
{
    std::atomic<int> calls{0};
    ThreadPool::global().run(0, 8, [&](std::size_t) { ++calls; });
    parallelFor(0, 0, 8, [&](std::size_t) { ++calls; });
    parallelFor(5, 5, 8, [&](std::size_t) { ++calls; });
    const int reduced = parallelReduce(
        std::size_t(0), std::size_t(0), 8, 4, 0,
        [](std::size_t, std::size_t) { return 1; },
        [](int &acc, int &&part) { acc += part; });
    EXPECT_EQ(calls.load(), 0);
    EXPECT_EQ(reduced, 0);
}

TEST(ThreadPool, EveryIndexVisitedExactlyOnce)
{
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> visits(n);
    for (auto &v : visits)
        v = 0;
    parallelFor(0, n, 8, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, RangeSmallerThanThreadCount)
{
    std::vector<std::atomic<int>> visits(3);
    for (auto &v : visits)
        v = 0;
    parallelFor(0, 3, 64, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(visits[i].load(), 1);
}

TEST(ThreadPool, RespectsOffsetRanges)
{
    std::vector<int> hits(20, 0);
    parallelFor(7, 13, 4, [&](std::size_t i) { hits[i] = 1; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i], i >= 7 && i < 13 ? 1 : 0) << "index " << i;
}

TEST(ThreadPool, ExceptionPropagatesOutOfATask)
{
    EXPECT_THROW(parallelFor(0, 100, 8,
                             [](std::size_t i) {
                                 if (i == 37)
                                     throw std::runtime_error("task 37");
                             }),
                 std::runtime_error);
}

TEST(ThreadPool, ExceptionPropagatesFromSerialPath)
{
    EXPECT_THROW(parallelFor(0, 10, 1,
                             [](std::size_t) {
                                 throw std::runtime_error("serial");
                             }),
                 std::runtime_error);
}

TEST(ThreadPool, PoolIsUsableAfterAnException)
{
    try {
        parallelFor(0, 50, 8, [](std::size_t) {
            throw std::runtime_error("boom");
        });
    } catch (const std::runtime_error &) {
    }
    std::atomic<std::size_t> sum{0};
    parallelFor(0, 100, 8, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, NestedParallelForIsSafe)
{
    const std::size_t outer = 16, inner = 32;
    std::vector<std::atomic<int>> visits(outer * inner);
    for (auto &v : visits)
        v = 0;
    parallelFor(0, outer, 8, [&](std::size_t i) {
        // The nested region must run inline instead of deadlocking
        // the pool's workers against each other.
        parallelFor(0, inner, 8,
                    [&](std::size_t j) { ++visits[i * inner + j]; });
    });
    for (std::size_t k = 0; k < visits.size(); ++k)
        EXPECT_EQ(visits[k].load(), 1) << "slot " << k;
}

TEST(ThreadPool, InTaskOnlyInsideTasks)
{
    EXPECT_FALSE(ThreadPool::inTask());
    std::atomic<int> inside{0};
    parallelFor(0, 8, 4, [&](std::size_t) {
        if (ThreadPool::inTask())
            ++inside;
    });
    EXPECT_EQ(inside.load(), 8);
    EXPECT_FALSE(ThreadPool::inTask());
}

TEST(ThreadPool, StressManySmallSubmits)
{
    // Many tiny regions back to back: exercises region setup/teardown
    // and the workers' generation handshake rather than throughput.
    std::atomic<std::size_t> total{0};
    for (int round = 0; round < 500; ++round) {
        const std::size_t n = 1 + (round % 7);
        parallelFor(0, n, 4, [&](std::size_t) { ++total; });
    }
    std::size_t expected = 0;
    for (int round = 0; round < 500; ++round)
        expected += 1 + (round % 7);
    EXPECT_EQ(total.load(), expected);
}

TEST(ThreadPool, ReduceSumsCorrectly)
{
    const std::size_t n = 10000;
    for (std::size_t threads : {std::size_t(1), std::size_t(4)}) {
        const long sum = parallelReduce(
            std::size_t(0), n, threads, 64, 0L,
            [](std::size_t b, std::size_t e) {
                long acc = 0;
                for (std::size_t i = b; i < e; ++i)
                    acc += static_cast<long>(i);
                return acc;
            },
            [](long &acc, long &&part) { acc += part; });
        EXPECT_EQ(sum, static_cast<long>(n * (n - 1) / 2));
    }
}

TEST(ThreadPool, ReduceJoinsInChunkOrder)
{
    // Collect chunk begins through the join; the fold order is part
    // of the determinism contract.
    const auto begins = parallelReduce(
        std::size_t(0), std::size_t(100), 8, 16,
        std::vector<std::size_t>{},
        [](std::size_t b, std::size_t) {
            return std::vector<std::size_t>{b};
        },
        [](std::vector<std::size_t> &acc, std::vector<std::size_t> &&p) {
            acc.insert(acc.end(), p.begin(), p.end());
        });
    const std::vector<std::size_t> expected{0, 16, 32, 48, 64, 80, 96};
    EXPECT_EQ(begins, expected);
}

TEST(ThreadPool, ResolveThreadsMapsZeroToHardware)
{
    EXPECT_EQ(resolveThreads(0), ThreadPool::global().threadCount());
    EXPECT_EQ(resolveThreads(1), 1u);
    EXPECT_EQ(resolveThreads(5), 5u);
}

TEST(ThreadPool, DedicatedPoolRunsAllTasks)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    std::atomic<std::size_t> sum{0};
    pool.run(256, 4, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 256u * 255u / 2);
}

} // namespace
} // namespace cooper
