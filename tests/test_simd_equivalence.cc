/**
 * @file
 * Differential tests for the SIMD-dispatched CF kernels.
 *
 * The bit-identity contract (cf/simd_kernels.hh) says every vector
 * tier reproduces the scalar reference exactly — same accumulation
 * order, same rounding, same tie-breaks — so a tier is purely a
 * performance choice. This file enforces that at three layers:
 *
 *  1. the raw block kernels (similarityBlock / knnAccumulateBlock),
 *     calling each tier's entry point directly and memcmp-ing doubles;
 *  2. the full predictor (similarityTriangle, updateSimilarityTriangle,
 *     predict) under setSimdOverrideForTesting, at threads 1/2/8;
 *  3. the dispatch plumbing itself (parse, clamp, override).
 *
 * Tiers the running CPU lacks are skipped (the dispatcher clamps), so
 * the file passes — vacuously thinner — on any machine. It is part of
 * the asan and tsan suites: the masked gathers and tiled fills are
 * exactly the code those sanitizers should vet.
 */

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "cf/item_knn.hh"
#include "cf/simd_kernels.hh"
#include "cf/sparse_matrix.hh"
#include "util/rng.hh"
#include "util/simd.hh"

namespace {

using namespace cooper;

const std::size_t kThreadCounts[] = {1, 2, 8};

/** Tiers this binary can actually run, scalar first. */
std::vector<SimdLevel>
availableTiers()
{
    std::vector<SimdLevel> tiers{SimdLevel::Scalar};
#if defined(COOPER_SIMD_X86)
    if (detectedSimdLevel() >= SimdLevel::Avx2)
        tiers.push_back(SimdLevel::Avx2);
    if (detectedSimdLevel() >= SimdLevel::Avx512)
        tiers.push_back(SimdLevel::Avx512);
#endif
    return tiers;
}

/** Pins activeSimdLevel() for a scope, then restores the env-derived
 *  default so later tests (and the COOPER_SIMD CI legs) see it. */
struct SimdOverrideGuard
{
    explicit SimdOverrideGuard(SimdLevel level)
    {
        setSimdOverrideForTesting(level);
    }
    ~SimdOverrideGuard() { setSimdOverrideForTesting(std::nullopt); }
};

bool
sameBits(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        return false;
    return a.empty() ||
           std::memcmp(a.data(), b.data(),
                       a.size() * sizeof(double)) == 0;
}

bool
sameDense(const std::vector<std::vector<double>> &a,
          const std::vector<std::vector<double>> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t r = 0; r < a.size(); ++r)
        if (!sameBits(a[r], b[r]))
            return false;
    return true;
}

SparseMatrix
randomSparse(std::size_t rows, std::size_t cols, double density,
             Rng &rng)
{
    SparseMatrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            if (rng.uniform() < density)
                m.set(r, c, rng.uniform() * 0.5);
    return m;
}

/** similarityBlock at one tier, or the tier's direct entry point. */
void
runSimilarityTier(const PackedColumns &packed, std::size_t a,
                  const std::vector<std::size_t> &bs, Similarity kind,
                  std::size_t min_overlap, SimdLevel level, double *out)
{
    switch (level) {
    case SimdLevel::Scalar:
        simd::similarityBlockScalar(packed, a, bs.data(), bs.size(),
                                    kind, min_overlap, out);
        return;
#if defined(COOPER_SIMD_X86)
    case SimdLevel::Avx2:
        simd::similarityBlockAvx2(packed, a, bs.data(), bs.size(), kind,
                                  min_overlap, out);
        return;
    case SimdLevel::Avx512:
        simd::similarityBlockAvx512(packed, a, bs.data(), bs.size(),
                                    kind, min_overlap, out);
        return;
#endif
    default:
        FAIL() << "tier not compiled in";
    }
}

void
runKnnTier(const double *tri, std::size_t items,
           const std::vector<std::size_t> &cs,
           const std::uint64_t *const *active, std::size_t words,
           const double *dev, SimdLevel level, double *num, double *den)
{
    switch (level) {
    case SimdLevel::Scalar:
        simd::knnAccumulateBlockScalar(tri, items, cs.data(), cs.size(),
                                       active, words, dev, num, den);
        return;
#if defined(COOPER_SIMD_X86)
    case SimdLevel::Avx2:
        simd::knnAccumulateBlockAvx2(tri, items, cs.data(), cs.size(),
                                     active, words, dev, num, den);
        return;
    case SimdLevel::Avx512:
        simd::knnAccumulateBlockAvx512(tri, items, cs.data(), cs.size(),
                                       active, words, dev, num, den);
        return;
#endif
    default:
        FAIL() << "tier not compiled in";
    }
}

TEST(SimdDispatch, ParseRoundTripsAndRejectsJunk)
{
    EXPECT_EQ(parseSimdLevel("scalar"), SimdLevel::Scalar);
    EXPECT_EQ(parseSimdLevel("avx2"), SimdLevel::Avx2);
    EXPECT_EQ(parseSimdLevel("avx512"), SimdLevel::Avx512);
    EXPECT_FALSE(parseSimdLevel("").has_value());
    EXPECT_FALSE(parseSimdLevel("AVX2").has_value());
    EXPECT_FALSE(parseSimdLevel("avx-512").has_value());
    EXPECT_FALSE(parseSimdLevel("sse42").has_value());
    for (SimdLevel level : {SimdLevel::Scalar, SimdLevel::Avx2,
                            SimdLevel::Avx512})
        EXPECT_EQ(parseSimdLevel(simdLevelName(level)), level);
}

TEST(SimdDispatch, OverrideClampsToDetectedTier)
{
    const SimdLevel detected = detectedSimdLevel();
    {
        SimdOverrideGuard guard(SimdLevel::Scalar);
        EXPECT_EQ(activeSimdLevel(), SimdLevel::Scalar);
    }
    {
        // Requesting more than the CPU has clamps, never faults.
        SimdOverrideGuard guard(SimdLevel::Avx512);
        EXPECT_EQ(activeSimdLevel(), std::min(detected,
                                              SimdLevel::Avx512));
        EXPECT_LE(activeSimdLevel(), detected);
    }
    // After the guards, the cache re-resolves from the environment —
    // honoring a COOPER_SIMD the CI legs may have set.
    const char *env = std::getenv("COOPER_SIMD");
    SimdLevel expected = detected;
    if (env != nullptr && *env != '\0') {
        const auto requested = parseSimdLevel(env);
        ASSERT_TRUE(requested.has_value()) << "COOPER_SIMD=" << env;
        expected = std::min(detected, *requested);
    }
    EXPECT_EQ(activeSimdLevel(), expected);
}

TEST(SimdKernels, SimilarityBlockMatchesScalarBitForBit)
{
    Rng rng(811);
    const Similarity kinds[] = {Similarity::Cosine,
                                Similarity::AdjustedCosine,
                                Similarity::Pearson};
    const auto tiers = availableTiers();
    for (int round = 0; round < 10; ++round) {
        // Rows sweep across the one-word boundary (masks shorter and
        // longer than 64 bits); cols are deliberately not multiples of
        // any lane width.
        const std::size_t rows = 3 + (round * 23) % 97;
        const std::size_t cols = 2 + (round * 13) % 31;
        const double density = 0.15 + 0.12 * (round % 6);
        const SparseMatrix m = randomSparse(rows, cols, density, rng);
        const PackedColumns packed = m.packedColumns();
        for (Similarity kind : kinds) {
            for (std::size_t min_overlap : {1, 2, 3}) {
                for (std::size_t a = 0; a < cols; ++a) {
                    std::vector<std::size_t> bs;
                    for (std::size_t b = 0; b < cols; ++b)
                        if (b != a)
                            bs.push_back(b);
                    std::vector<double> expect(bs.size());
                    // Per-pair scalar kernel is the ground truth the
                    // block entry points must agree with.
                    for (std::size_t k = 0; k < bs.size(); ++k)
                        expect[k] = simd::scalarPackedSimilarity(
                            packed.column(a), packed.column(bs[k]),
                            packed.mask(a), packed.mask(bs[k]),
                            packed.words(), kind, min_overlap);
                    for (SimdLevel tier : tiers) {
                        std::vector<double> out(bs.size(), -7.0);
                        runSimilarityTier(packed, a, bs, kind,
                                          min_overlap, tier,
                                          out.data());
                        EXPECT_TRUE(sameBits(expect, out))
                            << "round " << round << " kind "
                            << static_cast<int>(kind) << " overlap "
                            << min_overlap << " a " << a << " tier "
                            << simdLevelName(tier);
                    }
                }
            }
        }
    }
}

TEST(SimdKernels, SimilarityBlockHandlesDegenerateShapes)
{
    Rng rng(822);
    const auto tiers = availableTiers();
    // count == 0 must be a no-op at every tier.
    {
        const SparseMatrix m = randomSparse(8, 4, 0.5, rng);
        const PackedColumns packed = m.packedColumns();
        const std::vector<std::size_t> none;
        for (SimdLevel tier : tiers) {
            double sentinel = 42.0;
            runSimilarityTier(packed, 1, none, Similarity::Cosine, 1,
                              tier, &sentinel);
            EXPECT_EQ(sentinel, 42.0) << simdLevelName(tier);
        }
    }
    // Block sizes 1..2*kMaxLanes+1 cover every partial-tail shape,
    // including blocks narrower than one vector.
    const SparseMatrix m = randomSparse(50, 2 * simd::kMaxLanes + 2,
                                        0.4, rng);
    const PackedColumns packed = m.packedColumns();
    for (std::size_t count = 1; count <= 2 * simd::kMaxLanes + 1;
         ++count) {
        std::vector<std::size_t> bs;
        for (std::size_t b = 1; b <= count; ++b)
            bs.push_back(b);
        std::vector<double> expect(count, -7.0);
        runSimilarityTier(packed, 0, bs, Similarity::Pearson, 2,
                          SimdLevel::Scalar, expect.data());
        for (SimdLevel tier : tiers) {
            std::vector<double> out(count, -9.0);
            runSimilarityTier(packed, 0, bs, Similarity::Pearson, 2,
                              tier, out.data());
            EXPECT_TRUE(sameBits(expect, out))
                << "count " << count << " tier "
                << simdLevelName(tier);
        }
    }
    // All-unknown columns: overlap is zero everywhere, every tier
    // must agree on the min-overlap rejection value.
    SparseMatrix empty_cols(20, 6);
    empty_cols.set(3, 0, 0.25); // one known cell in column 0 only
    const PackedColumns packed_empty = empty_cols.packedColumns();
    const std::vector<std::size_t> bs{1, 2, 3, 4, 5};
    std::vector<double> expect(bs.size(), -7.0);
    runSimilarityTier(packed_empty, 0, bs, Similarity::Cosine, 1,
                      SimdLevel::Scalar, expect.data());
    for (SimdLevel tier : tiers) {
        std::vector<double> out(bs.size(), -9.0);
        runSimilarityTier(packed_empty, 0, bs, Similarity::Cosine, 1,
                          tier, out.data());
        EXPECT_TRUE(sameBits(expect, out)) << simdLevelName(tier);
    }
}

TEST(SimdKernels, KnnAccumulateBlockMatchesScalarBitForBit)
{
    Rng rng(833);
    const auto tiers = availableTiers();
    // Item counts straddle the 64-neighbor word boundary.
    for (std::size_t items : {2u, 5u, 17u, 63u, 64u, 65u, 130u}) {
        SimilarityTriangle tri(items);
        for (std::size_t a = 0; a < items; ++a)
            for (std::size_t b = a + 1; b < items; ++b)
                tri.set(a, b, rng.uniform() * 2.0 - 1.0);
        std::vector<double> dev(items);
        for (double &d : dev)
            d = rng.uniform() - 0.5;
        const std::size_t words = (items + 63) / 64;
        for (int round = 0; round < 6; ++round) {
            // Random target set, random active-neighbor masks; a
            // target is never its own neighbor.
            std::vector<std::size_t> cs;
            for (std::size_t c = 0; c < items; ++c)
                if (rng.uniform() < 0.6)
                    cs.push_back(c);
            if (cs.empty())
                cs.push_back(round % items);
            std::vector<std::uint64_t> masks(cs.size() * words, 0);
            std::vector<const std::uint64_t *> active(cs.size());
            for (std::size_t k = 0; k < cs.size(); ++k) {
                std::uint64_t *mask = masks.data() + k * words;
                for (std::size_t c2 = 0; c2 < items; ++c2)
                    if (c2 != cs[k] && rng.uniform() < 0.5)
                        mask[c2 / 64] |= std::uint64_t(1) << (c2 % 64);
                active[k] = mask;
            }
            std::vector<double> num0(cs.size(), -7.0);
            std::vector<double> den0(cs.size(), -7.0);
            runKnnTier(tri.data(), items, cs, active.data(), words,
                       dev.data(), SimdLevel::Scalar, num0.data(),
                       den0.data());
            for (SimdLevel tier : tiers) {
                std::vector<double> num(cs.size(), -9.0);
                std::vector<double> den(cs.size(), -9.0);
                runKnnTier(tri.data(), items, cs, active.data(), words,
                           dev.data(), tier, num.data(), den.data());
                EXPECT_TRUE(sameBits(num0, num))
                    << "items " << items << " round " << round
                    << " tier " << simdLevelName(tier);
                EXPECT_TRUE(sameBits(den0, den))
                    << "items " << items << " round " << round
                    << " tier " << simdLevelName(tier);
            }
        }
    }
}

TEST(SimdEquivalence, SimilarityTriangleIdenticalAcrossTiers)
{
    Rng rng(844);
    const Similarity kinds[] = {Similarity::Cosine,
                                Similarity::AdjustedCosine,
                                Similarity::Pearson};
    for (int round = 0; round < 4; ++round) {
        const std::size_t rows = 6 + (round * 19) % 41;
        const std::size_t cols = 5 + (round * 11) % 37;
        const SparseMatrix m =
            randomSparse(rows, cols, 0.2 + 0.15 * round, rng);
        for (Similarity kind : kinds) {
            ItemKnnConfig config;
            config.similarity = kind;
            std::optional<SimilarityTriangle> reference;
            for (SimdLevel tier : availableTiers()) {
                for (std::size_t threads : kThreadCounts) {
                    config.threads = threads;
                    SimdOverrideGuard guard(tier);
                    const SimilarityTriangle tri =
                        ItemKnnPredictor(config).similarityTriangle(m);
                    if (!reference.has_value()) {
                        reference = tri;
                        continue;
                    }
                    ASSERT_EQ(reference->items(), tri.items());
                    const std::size_t cells =
                        cols > 1 ? cols * (cols - 1) / 2 : 0;
                    EXPECT_TRUE(cells == 0 ||
                                std::memcmp(reference->data(),
                                            tri.data(),
                                            cells * sizeof(double)) ==
                                    0)
                        << "round " << round << " kind "
                        << static_cast<int>(kind) << " tier "
                        << simdLevelName(tier) << " threads "
                        << threads;
                }
            }
        }
    }
}

TEST(SimdEquivalence, PredictIdenticalAcrossTiersAndThreads)
{
    Rng rng(855);
    for (int round = 0; round < 3; ++round) {
        const std::size_t n = 8 + (round * 9) % 22;
        const SparseMatrix m =
            randomSparse(n, n, 0.3 + 0.1 * round, rng);
        for (std::size_t neighbors : {0, 4}) {
            ItemKnnConfig config;
            config.neighbors = neighbors;
            config.bidirectional = true;
            config.iterations = 2;
            std::optional<Prediction> reference;
            for (SimdLevel tier : availableTiers()) {
                for (std::size_t threads : kThreadCounts) {
                    config.threads = threads;
                    SimdOverrideGuard guard(tier);
                    const Prediction p =
                        ItemKnnPredictor(config).predict(m);
                    if (!reference.has_value()) {
                        reference = p;
                        continue;
                    }
                    EXPECT_TRUE(sameDense(reference->dense, p.dense))
                        << "round " << round << " k " << neighbors
                        << " tier " << simdLevelName(tier)
                        << " threads " << threads;
                    EXPECT_EQ(reference->iterations, p.iterations);
                    EXPECT_EQ(reference->fallbackCells,
                              p.fallbackCells);
                }
            }
        }
    }
}

TEST(SimdEquivalence, PredictHandlesTinyCatalogsAtEveryTier)
{
    // A 1-column catalog has no column pairs at all (SparseMatrix
    // rejects 0x0 outright); the tiled fill and the dispatchers must
    // cope without touching the (empty) triangle.
    for (SimdLevel tier : availableTiers()) {
        SimdOverrideGuard guard(tier);
        ItemKnnConfig config;

        SparseMatrix one(1, 1);
        one.set(0, 0, 0.125);
        const Prediction p1 = ItemKnnPredictor(config).predict(one);
        ASSERT_EQ(p1.dense.size(), 1u) << simdLevelName(tier);
        EXPECT_EQ(p1.dense[0][0], 0.125) << simdLevelName(tier);

        // One column pair, mask shorter than a word.
        SparseMatrix two(3, 2);
        two.set(0, 0, 0.5);
        two.set(0, 1, 0.25);
        two.set(1, 0, 0.75);
        const Prediction p2 = ItemKnnPredictor(config).predict(two);
        ASSERT_EQ(p2.dense.size(), 3u) << simdLevelName(tier);
        EXPECT_EQ(p2.dense[0][0], 0.5) << simdLevelName(tier);
        EXPECT_EQ(p2.dense[0][1], 0.25) << simdLevelName(tier);
    }
}

TEST(SimdEquivalence, UpdateTriangleIdenticalAcrossTiers)
{
    Rng rng(866);
    const std::size_t rows = 40;
    const std::size_t cols = 23;
    SparseMatrix m = randomSparse(rows, cols, 0.35, rng);
    ItemKnnConfig config;
    config.similarity = Similarity::AdjustedCosine;

    // Base triangle at the scalar tier, then a batch of edits.
    SimilarityTriangle base(0);
    {
        SimdOverrideGuard guard(SimdLevel::Scalar);
        base = ItemKnnPredictor(config).similarityTriangle(m);
    }
    const std::size_t col_words = (cols + 63) / 64;
    const std::size_t row_words = (rows + 63) / 64;
    std::vector<std::uint64_t> dirty_cols(col_words, 0);
    std::vector<std::uint64_t> dirty_rows(row_words, 0);
    for (int edit = 0; edit < 12; ++edit) {
        const std::size_t r = (edit * 7) % rows;
        const std::size_t c = (edit * 5) % cols;
        if (m.known(r, c) && edit % 3 == 0)
            m.clear(r, c);
        else
            m.set(r, c, rng.uniform());
        dirty_cols[c / 64] |= std::uint64_t(1) << (c % 64);
        dirty_rows[r / 64] |= std::uint64_t(1) << (r % 64);
    }
    SimilarityTriangle expect(0);
    {
        SimdOverrideGuard guard(SimdLevel::Scalar);
        expect = ItemKnnPredictor(config).similarityTriangle(m);
    }
    const std::size_t cells = cols * (cols - 1) / 2;
    for (SimdLevel tier : availableTiers()) {
        for (std::size_t threads : kThreadCounts) {
            config.threads = threads;
            SimdOverrideGuard guard(tier);
            SimilarityTriangle sim = base;
            const std::size_t recomputed = updateSimilarityTriangle(
                m, config, sim, dirty_cols, dirty_rows);
            EXPECT_GT(recomputed, 0u);
            EXPECT_TRUE(std::memcmp(expect.data(), sim.data(),
                                    cells * sizeof(double)) == 0)
                << "tier " << simdLevelName(tier) << " threads "
                << threads;
        }
    }
}

} // namespace
