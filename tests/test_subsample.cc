/**
 * @file
 * Unit tests for symmetric matrix subsampling.
 */

#include <gtest/gtest.h>

#include "cf/subsample.hh"
#include "util/error.hh"

namespace cooper {
namespace {

SparseMatrix
fullMatrix(std::size_t n)
{
    SparseMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            m.set(i, j, static_cast<double>(i * n + j));
    return m;
}

TEST(Subsample, KeepsRequestedFraction)
{
    const SparseMatrix full = fullMatrix(20);
    Rng rng(1);
    const SparseMatrix sparse = subsampleSymmetric(full, 0.25, 0, rng);
    EXPECT_GE(sparse.density(), 0.25);
    EXPECT_LT(sparse.density(), 0.35);
}

TEST(Subsample, ValuesMatchSource)
{
    const SparseMatrix full = fullMatrix(10);
    Rng rng(2);
    const SparseMatrix sparse = subsampleSymmetric(full, 0.5, 1, rng);
    for (std::size_t i = 0; i < 10; ++i)
        for (std::size_t j = 0; j < 10; ++j)
            if (sparse.known(i, j))
                EXPECT_DOUBLE_EQ(sparse.at(i, j), full.at(i, j));
}

TEST(Subsample, KnownnessIsSymmetric)
{
    const SparseMatrix full = fullMatrix(16);
    Rng rng(3);
    const SparseMatrix sparse = subsampleSymmetric(full, 0.3, 2, rng);
    for (std::size_t i = 0; i < 16; ++i)
        for (std::size_t j = 0; j < 16; ++j)
            EXPECT_EQ(sparse.known(i, j), sparse.known(j, i));
}

TEST(Subsample, RowCoverageGuaranteed)
{
    const SparseMatrix full = fullMatrix(20);
    Rng rng(4);
    const SparseMatrix sparse = subsampleSymmetric(full, 0.05, 3, rng);
    for (std::size_t r = 0; r < 20; ++r) {
        std::size_t known = 0;
        for (std::size_t c = 0; c < 20; ++c)
            if (sparse.known(r, c))
                ++known;
        EXPECT_GE(known, 3u) << "row " << r;
    }
}

TEST(Subsample, FullRatioKeepsEverything)
{
    const SparseMatrix full = fullMatrix(8);
    Rng rng(5);
    const SparseMatrix sparse = subsampleSymmetric(full, 1.0, 0, rng);
    EXPECT_EQ(sparse.knownCount(), 64u);
}

TEST(Subsample, DeterministicPerSeed)
{
    const SparseMatrix full = fullMatrix(12);
    Rng rng_a(7), rng_b(7);
    const SparseMatrix a = subsampleSymmetric(full, 0.4, 1, rng_a);
    const SparseMatrix b = subsampleSymmetric(full, 0.4, 1, rng_b);
    for (std::size_t i = 0; i < 12; ++i)
        for (std::size_t j = 0; j < 12; ++j)
            EXPECT_EQ(a.known(i, j), b.known(i, j));
}

TEST(Subsample, RejectsBadInput)
{
    Rng rng(1);
    const SparseMatrix full = fullMatrix(4);
    EXPECT_THROW(subsampleSymmetric(full, 0.0, 1, rng), FatalError);
    EXPECT_THROW(subsampleSymmetric(full, 1.5, 1, rng), FatalError);

    SparseMatrix rect(2, 3);
    EXPECT_THROW(subsampleSymmetric(rect, 0.5, 1, rng), FatalError);

    SparseMatrix holes(4, 4);
    holes.set(0, 0, 1.0);
    EXPECT_THROW(subsampleSymmetric(holes, 0.5, 1, rng), FatalError);
}

} // namespace
} // namespace cooper
