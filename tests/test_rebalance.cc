/**
 * @file
 * Property tests for the pure cross-shard rebalance planner: the
 * migration budget is respected, every applied move strictly improves
 * the egalitarian objective and the chain is monotone non-increasing,
 * plans are deterministic, targets without admission room never
 * receive migrants, and profile merging averages exactly the shards
 * that know a cell.
 */

#include <gtest/gtest.h>

#include <vector>

#include "shard/rebalance.hh"
#include "util/error.hh"

namespace cooper {
namespace {

/** Two-type profile matrix: penalty(a colocated with b). */
SparseMatrix
makeProfiles(double same0, double cross, double same1)
{
    SparseMatrix m(2, 2);
    m.set(0, 0, same0);
    m.set(0, 1, cross);
    m.set(1, 0, cross);
    m.set(1, 1, same1);
    return m;
}

/** Shard 0 pairs two type-0 jobs (cost 10); shard 1 pairs two type-1
 *  jobs (cost 1). Moving one type-0 job next door drops the fleet's
 *  worst-off cost from 10 to ~cross. */
std::vector<ShardView>
hotColdFleet(std::size_t room = 8)
{
    std::vector<ShardView> shards(2);
    shards[0].live = {{1, 0}, {2, 0}};
    shards[0].pairs = {{1, 2}};
    shards[0].admissionRoom = room;
    shards[1].live = {{3, 1}, {4, 1}};
    shards[1].pairs = {{3, 4}};
    shards[1].admissionRoom = room;
    return shards;
}

TEST(Rebalancer, MovesTheWorstOffJobOutOfTheHotShard)
{
    const SparseMatrix profiles = makeProfiles(10.0, 1.0, 1.0);
    const Rebalancer rebalancer(4);
    const RebalanceOutcome outcome =
        rebalancer.plan(hotColdFleet(), profiles);

    ASSERT_EQ(outcome.moves.size(), 1u);
    const MigrationMove &move = outcome.moves[0];
    EXPECT_EQ(move.uid, 1u);
    EXPECT_EQ(move.fromShard, 0u);
    EXPECT_EQ(move.toShard, 1u);
    EXPECT_DOUBLE_EQ(outcome.objectiveBefore, 10.0);
    EXPECT_LT(outcome.objectiveAfter, outcome.objectiveBefore);
}

TEST(Rebalancer, RespectsTheMigrationBudget)
{
    const SparseMatrix profiles = makeProfiles(10.0, 1.0, 1.0);
    for (const std::size_t budget : {0u, 1u, 2u, 5u}) {
        const Rebalancer rebalancer(budget);
        const RebalanceOutcome outcome =
            rebalancer.plan(hotColdFleet(), profiles);
        EXPECT_LE(outcome.moves.size(), budget);
        if (budget == 0)
            EXPECT_DOUBLE_EQ(outcome.objectiveAfter,
                             outcome.objectiveBefore);
    }
}

TEST(Rebalancer, ObjectiveIsMonotoneNonIncreasingAcrossMoves)
{
    // Three hot pairs force several passes; every one must strictly
    // improve, and the chained before/after values must never rise.
    SparseMatrix profiles(4, 4);
    for (std::size_t a = 0; a < 4; ++a)
        for (std::size_t b = 0; b < 4; ++b)
            profiles.set(a, b, a == b ? 8.0 + static_cast<double>(a)
                                      : 0.5);

    std::vector<ShardView> shards(3);
    shards[0].live = {{1, 3}, {2, 3}, {3, 2}, {4, 2}};
    shards[0].pairs = {{1, 2}, {3, 4}};
    shards[0].admissionRoom = 8;
    shards[1].live = {{5, 1}, {6, 1}};
    shards[1].pairs = {{5, 6}};
    shards[1].admissionRoom = 8;
    shards[2].live = {{7, 0}};
    shards[2].pairs = {};
    shards[2].admissionRoom = 8;

    const Rebalancer rebalancer(8);
    const RebalanceOutcome outcome = rebalancer.plan(shards, profiles);

    ASSERT_FALSE(outcome.moves.empty());
    double last = outcome.objectiveBefore;
    for (const MigrationMove &move : outcome.moves) {
        EXPECT_LE(move.objectiveBefore, last + 1e-12);
        EXPECT_LT(move.objectiveAfter, move.objectiveBefore);
        last = move.objectiveAfter;
    }
    EXPECT_LE(outcome.objectiveAfter, outcome.objectiveBefore);
}

TEST(Rebalancer, PlanIsDeterministic)
{
    const SparseMatrix profiles = makeProfiles(10.0, 1.0, 9.0);
    const std::vector<ShardView> shards = hotColdFleet();
    const Rebalancer rebalancer(4);

    const RebalanceOutcome first = rebalancer.plan(shards, profiles);
    const RebalanceOutcome second = rebalancer.plan(shards, profiles);

    ASSERT_EQ(first.moves.size(), second.moves.size());
    for (std::size_t i = 0; i < first.moves.size(); ++i) {
        EXPECT_EQ(first.moves[i].uid, second.moves[i].uid);
        EXPECT_EQ(first.moves[i].fromShard, second.moves[i].fromShard);
        EXPECT_EQ(first.moves[i].toShard, second.moves[i].toShard);
    }
    EXPECT_DOUBLE_EQ(first.objectiveAfter, second.objectiveAfter);
}

TEST(Rebalancer, SingleShardHasNowhereToMove)
{
    const SparseMatrix profiles = makeProfiles(10.0, 1.0, 1.0);
    std::vector<ShardView> shards(1);
    shards[0].live = {{1, 0}, {2, 0}};
    shards[0].pairs = {{1, 2}};
    shards[0].admissionRoom = 8;

    const RebalanceOutcome outcome =
        Rebalancer(4).plan(shards, profiles);
    EXPECT_TRUE(outcome.moves.empty());
    EXPECT_DOUBLE_EQ(outcome.objectiveAfter, outcome.objectiveBefore);
}

TEST(Rebalancer, NeverMigratesIntoAFullShard)
{
    const SparseMatrix profiles = makeProfiles(10.0, 1.0, 1.0);
    std::vector<ShardView> shards = hotColdFleet();
    shards[1].admissionRoom = 0; // the only possible target is full

    const RebalanceOutcome outcome =
        Rebalancer(4).plan(shards, profiles);
    EXPECT_TRUE(outcome.moves.empty());
    EXPECT_DOUBLE_EQ(outcome.objectiveBefore, 10.0);
    EXPECT_DOUBLE_EQ(outcome.objectiveAfter, 10.0);
}

TEST(Rebalancer, UnmatchedJobsCostNothing)
{
    // Everyone is unmatched: the objective is already zero and no
    // move can improve it.
    const SparseMatrix profiles = makeProfiles(10.0, 10.0, 10.0);
    std::vector<ShardView> shards(2);
    shards[0].live = {{1, 0}, {2, 1}};
    shards[0].admissionRoom = 8;
    shards[1].live = {{3, 0}};
    shards[1].admissionRoom = 8;

    const RebalanceOutcome outcome =
        Rebalancer(4).plan(shards, profiles);
    EXPECT_TRUE(outcome.moves.empty());
    EXPECT_DOUBLE_EQ(outcome.objectiveBefore, 0.0);
    EXPECT_DOUBLE_EQ(outcome.objectiveAfter, 0.0);
}

TEST(MergeProfiles, AveragesExactlyTheShardsThatKnowACell)
{
    SparseMatrix a(2, 2);
    a.set(0, 0, 4.0);
    a.set(0, 1, 2.0);
    SparseMatrix b(2, 2);
    b.set(0, 0, 6.0);
    b.set(1, 1, 3.0);

    const SparseMatrix merged = mergeProfiles({&a, &b});
    EXPECT_TRUE(merged.known(0, 0));
    EXPECT_DOUBLE_EQ(merged.at(0, 0), 5.0); // both know it
    EXPECT_DOUBLE_EQ(merged.at(0, 1), 2.0); // only a
    EXPECT_DOUBLE_EQ(merged.at(1, 1), 3.0); // only b
    EXPECT_FALSE(merged.known(1, 0));       // nobody
}

TEST(MergeProfiles, RefusesMismatchedShapes)
{
    SparseMatrix a(2, 2);
    SparseMatrix b(3, 3);
    EXPECT_THROW(mergeProfiles({&a, &b}), FatalError);
}

} // namespace
} // namespace cooper
