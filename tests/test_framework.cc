/**
 * @file
 * Integration tests for the end-to-end Cooper framework.
 */

#include <gtest/gtest.h>

#include "core/framework.hh"
#include "matching/blocking.hh"
#include "util/error.hh"
#include "workload/population.hh"

namespace cooper {
namespace {

class FrameworkTest : public ::testing::Test
{
  protected:
    Catalog catalog_ = Catalog::paperTableI();
    InterferenceModel model_{catalog_};

    std::vector<JobTypeId>
    population(std::size_t n, std::uint64_t seed = 1)
    {
        Rng rng(seed);
        return samplePopulation(catalog_, n, MixKind::Uniform, rng);
    }
};

TEST_F(FrameworkTest, OracularEpochProducesPerfectMatching)
{
    FrameworkConfig config;
    config.policy = "SMR";
    config.oracular = true;
    CooperFramework framework(catalog_, model_, config, 1);
    const EpochReport report = framework.runEpoch(population(100));
    EXPECT_TRUE(report.matching.isPerfect());
    EXPECT_EQ(report.penalties.size(), 100u);
    EXPECT_GT(report.meanPenalty, 0.0);
    EXPECT_DOUBLE_EQ(report.predictionAccuracy, 1.0);
}

TEST_F(FrameworkTest, CfEpochReportsAccuracyAndDensity)
{
    FrameworkConfig config;
    config.policy = "SMR";
    config.oracular = false;
    config.sampleRatio = 0.25;
    CooperFramework framework(catalog_, model_, config, 2);
    const EpochReport report = framework.runEpoch(population(60));
    EXPECT_GT(report.predictionAccuracy, 0.7);
    EXPECT_LT(report.predictionAccuracy, 1.0);
    EXPECT_GE(report.profiledDensity, 0.25);
}

TEST_F(FrameworkTest, MessageProtocolMatchesDirectBlockingCount)
{
    // In oracular mode the agents' assessed disutilities equal the
    // ground truth, so message-based discovery must agree with
    // findBlockingPairs.
    FrameworkConfig config;
    config.policy = "GR";
    config.oracular = true;
    config.alpha = 0.0;
    CooperFramework framework(catalog_, model_, config, 3);
    const auto pop = population(80, 5);
    const EpochReport report = framework.runEpoch(pop);

    ColocationInstance instance = framework.buildInstance(pop);
    const std::size_t direct = countBlockingPairs(
        report.matching,
        [&](AgentId a, AgentId b) {
            return instance.trueDisutility(a, b);
        },
        0.0);
    EXPECT_EQ(report.blockingPairs, direct);
}

TEST_F(FrameworkTest, AlphaReducesBlockingPairs)
{
    FrameworkConfig base;
    base.policy = "GR";
    base.oracular = true;
    base.alpha = 0.0;
    FrameworkConfig strict = base;
    strict.alpha = 0.05;

    const auto pop = population(100, 7);
    CooperFramework loose(catalog_, model_, base, 4);
    CooperFramework tight(catalog_, model_, strict, 4);
    EXPECT_GE(loose.runEpoch(pop).blockingPairs,
              tight.runEpoch(pop).blockingPairs);
}

TEST_F(FrameworkTest, StablePolicyYieldsFewerBreakAways)
{
    FrameworkConfig gr_config;
    gr_config.policy = "GR";
    gr_config.oracular = true;
    FrameworkConfig sr_config = gr_config;
    sr_config.policy = "SR";

    const auto pop = population(120, 9);
    CooperFramework gr(catalog_, model_, gr_config, 5);
    CooperFramework sr(catalog_, model_, sr_config, 5);
    EXPECT_LT(sr.runEpoch(pop).breakAwayAgents,
              gr.runEpoch(pop).breakAwayAgents);
}

TEST_F(FrameworkTest, DispatchCoversAllPairs)
{
    FrameworkConfig config;
    config.policy = "CO";
    config.oracular = true;
    config.machines = 10;
    CooperFramework framework(catalog_, model_, config, 6);
    const EpochReport report = framework.runEpoch(population(60));
    EXPECT_EQ(report.dispatch.completions.size(), 30u);
    EXPECT_GT(report.dispatch.makespanSec, 0.0);
    EXPECT_GT(report.dispatch.utilization, 0.0);
}

TEST_F(FrameworkTest, RecommendationsCoverEveryAgent)
{
    FrameworkConfig config;
    config.policy = "SMP";
    config.oracular = true;
    CooperFramework framework(catalog_, model_, config, 7);
    const EpochReport report = framework.runEpoch(population(40));
    EXPECT_EQ(report.recommendations.size(), 40u);
    std::size_t breakaways = 0;
    for (const auto &rec : report.recommendations)
        if (rec.action == ActionKind::BreakAway)
            ++breakaways;
    EXPECT_EQ(breakaways, report.breakAwayAgents);
}

TEST_F(FrameworkTest, EmptyPopulationFatal)
{
    FrameworkConfig config;
    config.oracular = true;
    CooperFramework framework(catalog_, model_, config, 8);
    EXPECT_THROW(framework.runEpoch({}), FatalError);
}

TEST_F(FrameworkTest, BadSampleRatioFatal)
{
    FrameworkConfig config;
    config.sampleRatio = 0.0;
    EXPECT_THROW(CooperFramework(catalog_, model_, config, 9),
                 FatalError);
}

TEST_F(FrameworkTest, UnknownPolicyFatal)
{
    FrameworkConfig config;
    config.policy = "NOPE";
    EXPECT_THROW(CooperFramework(catalog_, model_, config, 10),
                 FatalError);
}

} // namespace
} // namespace cooper
