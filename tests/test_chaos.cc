/**
 * @file
 * Failure-injection and extreme-configuration tests: the pipeline
 * must stay well-defined (no crashes, no invariant violations) even
 * when profiling is nearly useless, noise dwarfs the signal, or the
 * hardware model is pushed to its edges.
 *
 * The FaultStorm suite drives the online service through active
 * FaultPlans — probe-timeout storms, scripted node crashes, and
 * quarantine churn — and holds the degradation contract: every epoch
 * completes, uncharacterizable jobs are quarantined and later
 * recovered (or abandoned, counted), the final matching stays within
 * 2x of the fault-free blocking-pair count, and checkpoint/restore
 * under faults replays bit-identically at any thread count.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "cf/item_knn.hh"
#include "core/framework.hh"
#include "core/experiment.hh"
#include "fault/plan.hh"
#include "io/serialize.hh"
#include "online/churn.hh"
#include "online/driver.hh"
#include "sim/profiler.hh"
#include "workload/population.hh"

namespace cooper {
namespace {

class ChaosTest : public ::testing::Test
{
  protected:
    Catalog catalog_ = Catalog::paperTableI();
    InterferenceModel model_{catalog_};
};

TEST_F(ChaosTest, HugeNoiseStillYieldsValidEpochs)
{
    FrameworkConfig config;
    config.policy = "SMR";
    config.noise.sigma = 0.5; // noise dwarfs every true penalty
    config.noise.floor = -0.5;
    CooperFramework framework(catalog_, model_, config, 1);
    Rng rng(2);
    const auto pop =
        samplePopulation(catalog_, 60, MixKind::Uniform, rng);
    const EpochReport report = framework.runEpoch(pop);
    EXPECT_TRUE(report.matching.isPerfect());
    for (double p : report.penalties) {
        EXPECT_GE(p, 0.0);
        EXPECT_LT(p, 1.0);
    }
    // Prediction should be near-useless but still a valid number.
    EXPECT_GE(report.predictionAccuracy, 0.0);
    EXPECT_LE(report.predictionAccuracy, 1.0);
}

TEST_F(ChaosTest, MinimalSamplingStillWorks)
{
    // Far below the paper's 25%: the min-per-row top-up is all the
    // predictor gets.
    FrameworkConfig config;
    config.policy = "SR";
    config.sampleRatio = 0.02;
    CooperFramework framework(catalog_, model_, config, 3);
    Rng rng(4);
    const auto pop =
        samplePopulation(catalog_, 40, MixKind::Uniform, rng);
    const EpochReport report = framework.runEpoch(pop);
    EXPECT_TRUE(report.matching.isPerfect());
}

TEST_F(ChaosTest, SingleTypePopulation)
{
    // Every agent runs the same job: all policies must still pair.
    const JobTypeId t = catalog_.jobByName("svm").id;
    std::vector<JobTypeId> pop(30, t);
    auto instance = ColocationInstance::oracular(catalog_, pop, model_);
    for (const auto &policy : figurePolicies()) {
        Rng rng(5);
        const Matching m = policy->assign(instance, rng);
        EXPECT_EQ(m.pairCount(), 15u) << policy->name();
    }
}

TEST_F(ChaosTest, TwoAgentPopulation)
{
    std::vector<JobTypeId> pop{0, 1};
    auto instance = ColocationInstance::oracular(catalog_, pop, model_);
    for (const auto &policy : figurePolicies()) {
        Rng rng(6);
        const Matching m = policy->assign(instance, rng);
        EXPECT_EQ(m.pairCount(), 1u) << policy->name();
    }
}

TEST_F(ChaosTest, SaturatedCacheModel)
{
    // Tiny LLC: every pair overflows completely; penalties must stay
    // clamped inside [0, 1).
    ServerConfig server;
    server.llcMB = 0.5;
    InterferenceModel cramped(catalog_, server);
    for (JobTypeId i = 0; i < catalog_.size(); ++i) {
        for (JobTypeId j = 0; j < catalog_.size(); ++j) {
            const double d = cramped.penalty(i, j);
            EXPECT_GE(d, 0.0);
            EXPECT_LT(d, 1.0);
        }
    }
}

TEST_F(ChaosTest, ZeroWeightModelIsPenaltyFree)
{
    ServerConfig server;
    server.weightBandwidth = 0.0;
    server.weightCache = 0.0;
    InterferenceModel free_model(catalog_, server);
    for (JobTypeId i = 0; i < catalog_.size(); i += 3)
        for (JobTypeId j = 0; j < catalog_.size(); j += 3)
            EXPECT_DOUBLE_EQ(free_model.penalty(i, j), 0.0);

    // With no contention anywhere, no blocking pair can exist.
    std::vector<JobTypeId> pop;
    Rng rng(7);
    pop = samplePopulation(catalog_, 40, MixKind::Uniform, rng);
    auto instance =
        ColocationInstance::oracular(catalog_, pop, free_model);
    Rng policy_rng(8);
    const Matching m = GreedyPolicy().assign(instance, policy_rng);
    const std::size_t blocking = countBlockingPairs(
        m,
        [&](AgentId a, AgentId b) {
            return instance.trueDisutility(a, b);
        },
        0.01);
    EXPECT_EQ(blocking, 0u);
}

TEST_F(ChaosTest, PredictorSurvivesConstantRatings)
{
    // All observed penalties identical: similarities degenerate and
    // every prediction must fall back gracefully.
    SparseMatrix ratings(6, 6);
    for (std::size_t i = 0; i < 6; ++i)
        ratings.set(i, (i + 1) % 6, 0.25);
    ItemKnnPredictor predictor;
    const Prediction p = predictor.predict(ratings);
    for (const auto &row : p.dense)
        for (double v : row)
            EXPECT_NEAR(v, 0.25, 1e-9);
}

TEST_F(ChaosTest, ExtremeMixesKeepPoliciesAlive)
{
    for (MixKind mix : allMixes()) {
        Rng rng(9);
        const auto instance =
            sampleInstance(catalog_, model_, 50, mix, rng);
        for (const auto &policy : figurePolicies()) {
            Rng policy_rng(10);
            const Matching m = policy->assign(instance, policy_rng);
            EXPECT_TRUE(m.consistent())
                << policy->name() << " on " << mixName(mix);
        }
    }
}

// ---------------------------------------------------------------------
// Fault storms against the online service.

class FaultStormTest : public ::testing::Test
{
  protected:
    ChurnTrace
    makeTrace(std::size_t arrivals, std::uint64_t seed,
              double mean_life = 400.0) const
    {
        ChurnConfig churn;
        churn.arrivals = arrivals;
        churn.initialJobs = 12;
        churn.meanInterarrivalTicks = 6.0;
        churn.meanLifetimeTicks = mean_life;
        Rng rng(seed);
        return generateChurnTrace(catalog_, churn, rng);
    }

    /** Generous admission so nothing is rejected for queue reasons. */
    FrameworkConfig
    serviceConfig(unsigned threads = 1) const
    {
        FrameworkConfig config;
        config.execution.threads = threads;
        config.execution.online.admitPerEpoch = 64;
        config.execution.online.maxQueueDepth = 0;
        return config;
    }

    OnlineReport
    replay(const ChurnTrace &trace, const FrameworkConfig &config,
           std::uint64_t seed, const FaultPlan &plan) const
    {
        OnlineDriver driver(catalog_, model_, config, seed);
        driver.setFaultPlan(plan);
        return driver.run(trace);
    }

    static std::string
    summaryOf(const OnlineReport &report)
    {
        std::ostringstream out;
        writeOnlineSummary(out, report);
        return out.str();
    }

    /** The first arrival landing at or after `min_epoch` that stays
     *  alive at least `min_epochs_alive` epochs, as (uid, epoch). The
     *  storm tests target it so the job is probed against an
     *  established population and survives its quarantine terms — a
     *  job departing inside its arrival epoch is withdrawn from the
     *  queue before it is ever probed. */
    static std::pair<std::uint64_t, std::uint64_t>
    lateArrival(const ChurnTrace &trace, const FrameworkConfig &config,
                std::uint64_t min_epoch, std::uint64_t min_epochs_alive)
    {
        const Tick ticks = config.execution.online.epochTicks;
        for (const ChurnEvent &event : trace.events()) {
            if (event.kind != EventKind::Arrival)
                continue;
            const std::uint64_t epoch = event.tick / ticks;
            if (epoch < min_epoch)
                continue;
            Tick departs = ~Tick{0}; // outlives the trace
            for (const ChurnEvent &later : trace.events())
                if (later.kind == EventKind::Departure &&
                    later.uid == event.uid)
                    departs = later.tick;
            if (departs / ticks >= epoch + min_epochs_alive)
                return {event.uid, epoch};
        }
        ADD_FAILURE() << "trace has no long-lived arrival past epoch "
                      << min_epoch;
        return {0, 0};
    }

    Catalog catalog_ = Catalog::paperTableI();
    InterferenceModel model_{catalog_};
};

/** Scripted per-job probe timeout at one epoch. */
ScriptedFault
scriptedTimeout(std::uint64_t epoch, std::uint64_t uid)
{
    ScriptedFault fault;
    fault.epoch = epoch;
    fault.kind = FaultKind::ProbeTimeout;
    fault.hasUid = true;
    fault.uid = uid;
    return fault;
}

TEST_F(FaultStormTest, ProbeTimeoutStormDegradesGracefully)
{
    // The acceptance storm: 20% of probe attempts time out. Every
    // epoch must still complete, the service must never crash, all
    // quarantines must resolve, and the final matching must stay
    // within 2x of the fault-free blocking-pair count.
    const ChurnTrace trace = makeTrace(200, 21);
    const FrameworkConfig config = serviceConfig();

    const OnlineReport clean = replay(trace, config, 5, FaultPlan());

    FaultSpec spec;
    spec.seed = 5;
    spec.probeTimeoutRate = 0.2;
    const OnlineReport degraded =
        replay(trace, config, 5, FaultPlan(spec));

    EXPECT_GT(degraded.totalFaultsInjected, 0u);
    EXPECT_GT(degraded.totalRetries, 0u);
    EXPECT_EQ(clean.totalFaultsInjected, 0u);

    // Every epoch completed, in order, none skipped.
    ASSERT_FALSE(degraded.epochs.empty());
    for (std::size_t i = 0; i < degraded.epochs.size(); ++i)
        EXPECT_EQ(degraded.epochs[i].epoch, i);

    // Degradation resolved: nothing left in quarantine at the end.
    EXPECT_EQ(degraded.finalQuarantine, 0u);

    // The matching survived the storm: final blocking-pair count is
    // within 2x of the fault-free run's.
    const std::size_t clean_blocking =
        clean.epochs.back().blockingAfter;
    const std::size_t degraded_blocking =
        degraded.epochs.back().blockingAfter;
    EXPECT_LE(degraded_blocking,
              std::max<std::size_t>(2 * clean_blocking, 1));
}

TEST_F(FaultStormTest, ScriptedStormQuarantinesThenRecovers)
{
    // Black out every probe of one late arrival for its whole arrival
    // epoch: the job cannot be characterized, must be quarantined, and
    // must be re-admitted cleanly after sitting out its term.
    const ChurnTrace trace = makeTrace(120, 31, /*mean_life=*/2500.0);
    const FrameworkConfig config = serviceConfig();
    const auto [uid, epoch] = lateArrival(trace, config, 4, 8);

    std::vector<ScriptedFault> script{scriptedTimeout(epoch, uid)};
    const OnlineReport report =
        replay(trace, config, 7, FaultPlan(FaultSpec{}, script));

    EXPECT_GE(report.totalQuarantined, 1u);
    EXPECT_GE(report.totalQuarantineReleased, 1u);
    EXPECT_EQ(report.totalAbandoned, 0u);
    EXPECT_EQ(report.finalQuarantine, 0u);
}

TEST_F(FaultStormTest, UnreachableJobIsAbandonedNotWedged)
{
    // Black out the same job's probes at every epoch: each release
    // fails again until the round cap abandons it. The service must
    // terminate (a wedged quarantine would loop forever) and count
    // the abandonment.
    const ChurnTrace trace = makeTrace(120, 31, /*mean_life=*/2500.0);
    const FrameworkConfig config = serviceConfig();
    const auto [uid, epoch] = lateArrival(trace, config, 4, 16);

    std::vector<ScriptedFault> script;
    for (std::uint64_t e = epoch; e < epoch + 64; ++e)
        script.push_back(scriptedTimeout(e, uid));
    const OnlineReport report =
        replay(trace, config, 7, FaultPlan(FaultSpec{}, script));

    EXPECT_GE(report.totalQuarantined, 1u);
    EXPECT_GE(report.totalAbandoned, 1u);
    EXPECT_EQ(report.finalQuarantine, 0u);
}

TEST_F(FaultStormTest, CrashStormKeepsStateConsistentAcrossThreads)
{
    // Node crashes every epoch (rate 1.0): the victim's pair is
    // evicted mid-service and re-admitted. The population must stay
    // consistent and the whole degraded run must be thread-invariant.
    const ChurnTrace trace = makeTrace(150, 41);

    FaultSpec spec;
    spec.seed = 11;
    spec.crashRatePerEpoch = 1.0;
    spec.probeTimeoutRate = 0.1;
    const FaultPlan plan(spec);

    const OnlineReport serial =
        replay(trace, serviceConfig(1), 11, plan);
    EXPECT_GT(serial.totalCrashes, 0u);
    EXPECT_EQ(serial.finalQuarantine, 0u);

    // No uid may appear twice in the final pairing.
    std::vector<JobUid> seen;
    for (const auto &[a, b] : serial.finalPairs) {
        seen.push_back(a);
        seen.push_back(b);
    }
    std::sort(seen.begin(), seen.end());
    EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) ==
                seen.end());

    for (unsigned threads : {2u, 8u}) {
        const OnlineReport parallel =
            replay(trace, serviceConfig(threads), 11, plan);
        EXPECT_EQ(summaryOf(parallel), summaryOf(serial))
            << "crash-storm replay diverged at " << threads
            << " threads";
    }
}

TEST_F(FaultStormTest, CheckpointRestoreUnderFaultsIsExact)
{
    // Cut the run at an epoch boundary while the storm is active and
    // resume from the checkpoint: the stitched run must land in the
    // byte-identical final state, at every thread count.
    const ChurnTrace trace = makeTrace(200, 9);

    FaultSpec spec;
    spec.seed = 13;
    spec.probeTimeoutRate = 0.2;
    spec.measurementDropRate = 0.05;
    spec.measurementCorruptRate = 0.05;
    spec.crashRatePerEpoch = 0.2;
    const FaultPlan plan(spec);

    std::string canonical_state;
    for (unsigned threads : {1u, 2u, 8u}) {
        const FrameworkConfig config = serviceConfig(threads);

        OnlineDriver whole(catalog_, model_, config, 10);
        whole.setFaultPlan(plan);
        const OnlineReport whole_report = whole.run(trace);
        EXPECT_GT(whole_report.totalFaultsInjected, 0u);

        const Tick cut = 10 * config.execution.online.epochTicks;
        std::vector<ChurnEvent> head;
        for (const ChurnEvent &event : trace.events())
            if (event.tick < cut)
                head.push_back(event);
        ASSERT_FALSE(head.empty());
        ASSERT_LT(head.size(), trace.size());

        OnlineDriver prefix(catalog_, model_, config, 10);
        prefix.setFaultPlan(plan);
        prefix.run(ChurnTrace(std::move(head)));
        ASSERT_LE(prefix.clockTick(), cut);

        // The checkpoint must survive serialization, not just the
        // in-memory snapshot: round-trip the state through its text
        // format before resuming.
        std::stringstream buffer;
        writeOnlineState(buffer, prefix.snapshot());
        OnlineDriver resumed(catalog_, model_, config, 10);
        resumed.setFaultPlan(plan);
        resumed.restore(readOnlineState(buffer));
        resumed.run(trace.suffix(resumed.clockTick()));

        std::ostringstream whole_state, resumed_state;
        writeOnlineState(whole_state, whole.snapshot());
        writeOnlineState(resumed_state, resumed.snapshot());
        EXPECT_EQ(whole_state.str(), resumed_state.str())
            << "stitched fault run diverged at " << threads
            << " threads";
        if (threads == 1)
            canonical_state = whole_state.str();
        else
            EXPECT_EQ(whole_state.str(), canonical_state)
                << "fault run is thread-dependent at " << threads
                << " threads";
    }
}

} // namespace
} // namespace cooper
