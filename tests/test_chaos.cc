/**
 * @file
 * Failure-injection and extreme-configuration tests: the pipeline
 * must stay well-defined (no crashes, no invariant violations) even
 * when profiling is nearly useless, noise dwarfs the signal, or the
 * hardware model is pushed to its edges.
 */

#include <gtest/gtest.h>

#include "cf/item_knn.hh"
#include "core/framework.hh"
#include "core/experiment.hh"
#include "sim/profiler.hh"
#include "workload/population.hh"

namespace cooper {
namespace {

class ChaosTest : public ::testing::Test
{
  protected:
    Catalog catalog_ = Catalog::paperTableI();
    InterferenceModel model_{catalog_};
};

TEST_F(ChaosTest, HugeNoiseStillYieldsValidEpochs)
{
    FrameworkConfig config;
    config.policy = "SMR";
    config.noise.sigma = 0.5; // noise dwarfs every true penalty
    config.noise.floor = -0.5;
    CooperFramework framework(catalog_, model_, config, 1);
    Rng rng(2);
    const auto pop =
        samplePopulation(catalog_, 60, MixKind::Uniform, rng);
    const EpochReport report = framework.runEpoch(pop);
    EXPECT_TRUE(report.matching.isPerfect());
    for (double p : report.penalties) {
        EXPECT_GE(p, 0.0);
        EXPECT_LT(p, 1.0);
    }
    // Prediction should be near-useless but still a valid number.
    EXPECT_GE(report.predictionAccuracy, 0.0);
    EXPECT_LE(report.predictionAccuracy, 1.0);
}

TEST_F(ChaosTest, MinimalSamplingStillWorks)
{
    // Far below the paper's 25%: the min-per-row top-up is all the
    // predictor gets.
    FrameworkConfig config;
    config.policy = "SR";
    config.sampleRatio = 0.02;
    CooperFramework framework(catalog_, model_, config, 3);
    Rng rng(4);
    const auto pop =
        samplePopulation(catalog_, 40, MixKind::Uniform, rng);
    const EpochReport report = framework.runEpoch(pop);
    EXPECT_TRUE(report.matching.isPerfect());
}

TEST_F(ChaosTest, SingleTypePopulation)
{
    // Every agent runs the same job: all policies must still pair.
    const JobTypeId t = catalog_.jobByName("svm").id;
    std::vector<JobTypeId> pop(30, t);
    auto instance = ColocationInstance::oracular(catalog_, pop, model_);
    for (const auto &policy : figurePolicies()) {
        Rng rng(5);
        const Matching m = policy->assign(instance, rng);
        EXPECT_EQ(m.pairCount(), 15u) << policy->name();
    }
}

TEST_F(ChaosTest, TwoAgentPopulation)
{
    std::vector<JobTypeId> pop{0, 1};
    auto instance = ColocationInstance::oracular(catalog_, pop, model_);
    for (const auto &policy : figurePolicies()) {
        Rng rng(6);
        const Matching m = policy->assign(instance, rng);
        EXPECT_EQ(m.pairCount(), 1u) << policy->name();
    }
}

TEST_F(ChaosTest, SaturatedCacheModel)
{
    // Tiny LLC: every pair overflows completely; penalties must stay
    // clamped inside [0, 1).
    ServerConfig server;
    server.llcMB = 0.5;
    InterferenceModel cramped(catalog_, server);
    for (JobTypeId i = 0; i < catalog_.size(); ++i) {
        for (JobTypeId j = 0; j < catalog_.size(); ++j) {
            const double d = cramped.penalty(i, j);
            EXPECT_GE(d, 0.0);
            EXPECT_LT(d, 1.0);
        }
    }
}

TEST_F(ChaosTest, ZeroWeightModelIsPenaltyFree)
{
    ServerConfig server;
    server.weightBandwidth = 0.0;
    server.weightCache = 0.0;
    InterferenceModel free_model(catalog_, server);
    for (JobTypeId i = 0; i < catalog_.size(); i += 3)
        for (JobTypeId j = 0; j < catalog_.size(); j += 3)
            EXPECT_DOUBLE_EQ(free_model.penalty(i, j), 0.0);

    // With no contention anywhere, no blocking pair can exist.
    std::vector<JobTypeId> pop;
    Rng rng(7);
    pop = samplePopulation(catalog_, 40, MixKind::Uniform, rng);
    auto instance =
        ColocationInstance::oracular(catalog_, pop, free_model);
    Rng policy_rng(8);
    const Matching m = GreedyPolicy().assign(instance, policy_rng);
    const std::size_t blocking = countBlockingPairs(
        m,
        [&](AgentId a, AgentId b) {
            return instance.trueDisutility(a, b);
        },
        0.01);
    EXPECT_EQ(blocking, 0u);
}

TEST_F(ChaosTest, PredictorSurvivesConstantRatings)
{
    // All observed penalties identical: similarities degenerate and
    // every prediction must fall back gracefully.
    SparseMatrix ratings(6, 6);
    for (std::size_t i = 0; i < 6; ++i)
        ratings.set(i, (i + 1) % 6, 0.25);
    ItemKnnPredictor predictor;
    const Prediction p = predictor.predict(ratings);
    for (const auto &row : p.dense)
        for (double v : row)
            EXPECT_NEAR(v, 0.25, 1e-9);
}

TEST_F(ChaosTest, ExtremeMixesKeepPoliciesAlive)
{
    for (MixKind mix : allMixes()) {
        Rng rng(9);
        const auto instance =
            sampleInstance(catalog_, model_, 50, mix, rng);
        for (const auto &policy : figurePolicies()) {
            Rng policy_rng(10);
            const Matching m = policy->assign(instance, policy_rng);
            EXPECT_TRUE(m.consistent())
                << policy->name() << " on " << mixName(mix);
        }
    }
}

} // namespace
} // namespace cooper
