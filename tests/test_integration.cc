/**
 * @file
 * End-to-end integration tests spanning every module: profiler ->
 * predictor -> agents -> policy -> assessment -> dispatcher, plus
 * serialization of the artifacts exchanged along the way.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/coordinator.hh"
#include "core/framework.hh"
#include "game/fairness.hh"
#include "io/serialize.hh"
#include "workload/population.hh"

namespace cooper {
namespace {

class IntegrationTest : public ::testing::Test
{
  protected:
    Catalog catalog_ = Catalog::paperTableI();
    InterferenceModel model_{catalog_};
};

TEST_F(IntegrationTest, MultiEpochRunKeepsDesiderata)
{
    FrameworkConfig config;
    config.policy = "SMR";
    config.sampleRatio = 0.25;
    config.alpha = 0.02;
    config.machines = 20;
    CooperFramework framework(catalog_, model_, config, 11);

    Rng rng(12);
    double fairness_acc = 0.0;
    const int epochs = 4;
    for (int e = 0; e < epochs; ++e) {
        const auto pop =
            samplePopulation(catalog_, 200, MixKind::Uniform, rng);
        const EpochReport report = framework.runEpoch(pop);

        // Performance: colocations all dispatched, machines bounded.
        EXPECT_TRUE(report.matching.isPerfect());
        EXPECT_EQ(report.dispatch.completions.size(), 100u);
        EXPECT_LE(report.dispatch.utilization, 1.0);

        // Stability: a minority of agents wants out at alpha = 2%
        // (prediction error inflates perceived opportunities, so the
        // CF-mode count sits well above the near-zero oracular one).
        EXPECT_LT(report.breakAwayAgents, 80u) << "epoch " << e;

        // Prediction: in the paper's accuracy band.
        EXPECT_GT(report.predictionAccuracy, 0.75);

        ColocationInstance instance = framework.buildInstance(pop);
        const auto rows = penaltiesByType(
            catalog_, pop, report.matching,
            [&](AgentId a, AgentId b) {
                return instance.trueDisutility(a, b);
            });
        fairness_acc += fairness(rows).rankCorrelation;
    }
    // Fairness: penalties track contentiousness on average.
    EXPECT_GT(fairness_acc / epochs, 0.6);
}

TEST_F(IntegrationTest, AgentsQueryPredictAndAssessThroughCoordinator)
{
    CoordinatorConfig config;
    config.sampleRatio = 0.3;
    Coordinator coordinator(catalog_, model_, config, 13);

    Agent agent(0, catalog_.jobByName("dedup").id);
    const SparseMatrix &profiles = agent.queryProfiles(coordinator);
    EXPECT_GE(profiles.density(), 0.3);

    const auto row = agent.predictTypeRow(profiles);
    ASSERT_EQ(row.size(), catalog_.size());
    // dedup's predicted penalty against a huge-footprint co-runner
    // should exceed its penalty against a tiny one.
    const auto naive_id = catalog_.jobByName("naive").id;
    const auto swap_id = catalog_.jobByName("swaptions").id;
    EXPECT_GT(row[naive_id], row[swap_id]);

    const auto prefs = agent.predictTypePreferences(profiles);
    EXPECT_EQ(prefs.size(), catalog_.size());
    // The preference order is the ascending sort of the row.
    for (std::size_t k = 1; k < prefs.size(); ++k)
        EXPECT_LE(row[prefs[k - 1]], row[prefs[k]]);
}

TEST_F(IntegrationTest, ArtifactsRoundTripThroughFiles)
{
    // The coordinator profiles, a policy matches, and both artifacts
    // survive the file formats agents would consume.
    CoordinatorConfig config;
    config.policy = "SR";
    Coordinator coordinator(catalog_, model_, config, 14);
    const SparseMatrix &profiles = coordinator.profiles();

    std::stringstream profile_stream;
    writeProfiles(profile_stream, profiles);
    const SparseMatrix restored = readProfiles(profile_stream);
    EXPECT_EQ(restored.knownCount(), profiles.knownCount());

    Rng rng(15);
    std::vector<JobTypeId> pop =
        samplePopulation(catalog_, 50, MixKind::Uniform, rng);
    auto instance =
        ColocationInstance::oracular(catalog_, pop, model_);
    Rng policy_rng(16);
    const Matching matching =
        coordinator.colocate(instance, policy_rng);

    std::stringstream matching_stream;
    writeMatching(matching_stream, matching);
    const Matching restored_matching = readMatching(matching_stream);
    EXPECT_EQ(restored_matching.pairs(), matching.pairs());
}

TEST_F(IntegrationTest, OracularAndCfAgreeOnHeavyHitters)
{
    // The believed ordering of clearly separated co-runners must
    // survive prediction: every type prefers swaptions to correlation.
    FrameworkConfig config;
    config.sampleRatio = 0.3;
    CooperFramework framework(catalog_, model_, config, 17);
    Rng rng(18);
    const auto pop =
        samplePopulation(catalog_, 60, MixKind::Uniform, rng);
    ColocationInstance instance = framework.buildInstance(pop);

    const auto swap_id = catalog_.jobByName("swaptions").id;
    const auto corr_id = catalog_.jobByName("correlation").id;
    for (JobTypeId t = 0; t < catalog_.size(); ++t) {
        EXPECT_LT(instance.believed()(t, swap_id),
                  instance.believed()(t, corr_id))
            << "type " << t;
    }
}

} // namespace
} // namespace cooper
