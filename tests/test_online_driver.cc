/**
 * @file
 * Property tests for the online colocation service: trace replay is
 * deterministic at any thread count, backpressure counts every
 * rejection, the repairing policy honors its migration budget, and a
 * mid-run checkpoint/restore replays into exactly the state a
 * straight-through run reaches.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "io/serialize.hh"
#include "online/churn.hh"
#include "online/driver.hh"
#include "online/events.hh"
#include "sim/interference.hh"
#include "util/error.hh"
#include "workload/catalog.hh"

namespace cooper {
namespace {

struct Fixture
{
    Catalog catalog = Catalog::paperTableI();
    InterferenceModel model{catalog};
};

ChurnTrace
makeTrace(const Catalog &catalog, std::size_t arrivals,
          std::uint64_t seed, double mean_gap = 6.0,
          double mean_life = 400.0, bool open_ended = false)
{
    ChurnConfig churn;
    churn.arrivals = arrivals;
    churn.initialJobs = 12;
    churn.meanInterarrivalTicks = mean_gap;
    churn.meanLifetimeTicks = mean_life;
    churn.openEnded = open_ended;
    Rng rng(seed);
    return generateChurnTrace(catalog, churn, rng);
}

std::string
summaryOf(const OnlineReport &report)
{
    std::ostringstream out;
    writeOnlineSummary(out, report);
    return out.str();
}

TEST(ChurnTrace, RoundTripsThroughStreams)
{
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 40, 1);
    ASSERT_FALSE(trace.empty());

    std::stringstream buffer;
    writeTrace(buffer, trace);
    const ChurnTrace back = readTrace(buffer);

    ASSERT_EQ(back.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(back.events()[i].tick, trace.events()[i].tick);
        EXPECT_EQ(back.events()[i].kind, trace.events()[i].kind);
        EXPECT_EQ(back.events()[i].uid, trace.events()[i].uid);
        EXPECT_EQ(back.events()[i].type, trace.events()[i].type);
    }
}

TEST(EventQueue, PopsByTickThenPushOrder)
{
    EventQueue queue;
    queue.push(ChurnEvent{30, EventKind::Arrival, 3, 0});
    queue.push(ChurnEvent{10, EventKind::Arrival, 1, 0});
    queue.push(ChurnEvent{10, EventKind::Arrival, 2, 0});
    queue.push(ChurnEvent{10, EventKind::Departure, 1, 0});

    EXPECT_EQ(queue.pop().uid, 1u);
    const ChurnEvent second = queue.pop();
    EXPECT_EQ(second.uid, 2u);
    EXPECT_EQ(second.kind, EventKind::Arrival);
    EXPECT_EQ(queue.pop().kind, EventKind::Departure);
    EXPECT_EQ(queue.pop().tick, 30u);
    EXPECT_TRUE(queue.empty());
}

TEST(OnlineDriver, SameTraceSameSummaryAtAnyThreadCount)
{
    const Fixture fx;
    // ~1k events: every arrival pairs with a departure.
    const ChurnTrace trace = makeTrace(fx.catalog, 500, 2);
    EXPECT_GE(trace.size(), 900u);

    std::vector<std::string> summaries;
    for (const std::size_t threads : {1u, 2u, 8u}) {
        FrameworkConfig config;
        config.execution.threads = threads;
        OnlineDriver driver(fx.catalog, fx.model, config, 17);
        summaries.push_back(summaryOf(driver.run(trace)));
    }
    EXPECT_EQ(summaries[0], summaries[1]);
    EXPECT_EQ(summaries[0], summaries[2]);
}

TEST(OnlineDriver, ReplayingTwiceIsBitIdentical)
{
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 80, 3);
    const FrameworkConfig config;

    OnlineDriver first(fx.catalog, fx.model, config, 5);
    OnlineDriver second(fx.catalog, fx.model, config, 5);
    EXPECT_EQ(summaryOf(first.run(trace)), summaryOf(second.run(trace)));
}

TEST(OnlineDriver, BackpressureRejectsBeyondTheQueueBound)
{
    const Fixture fx;
    // A tight burst against a tiny queue and slow admission.
    const ChurnTrace trace =
        makeTrace(fx.catalog, 120, 4, /*mean_gap=*/0.5);
    FrameworkConfig config;
    config.execution.online.admitPerEpoch = 2;
    config.execution.online.maxQueueDepth = 4;

    OnlineDriver driver(fx.catalog, fx.model, config, 6);
    const OnlineReport report = driver.run(trace);

    EXPECT_GT(report.totalRejected, 0u);
    // Every arrival is admitted, rejected, or withdrawn (it departed
    // while still waiting in the queue) — never lost.
    EXPECT_LE(report.totalAdmitted + report.totalRejected,
              report.totalArrivals);
    for (const OnlineEpochStats &e : report.epochs)
        EXPECT_LE(e.queueDepth, 4u);
}

TEST(OnlineDriver, UnboundedQueueAdmitsEverything)
{
    const Fixture fx;
    // Open-ended, near-immortal jobs: nothing departs, so no arrival
    // can be withdrawn while waiting — the queue must drain fully.
    const ChurnTrace trace =
        makeTrace(fx.catalog, 120, 4, /*mean_gap=*/0.5,
                  /*mean_life=*/1e6, /*open_ended=*/true);
    FrameworkConfig config;
    config.execution.online.admitPerEpoch = 2;
    config.execution.online.maxQueueDepth = 0; // unbounded

    OnlineDriver driver(fx.catalog, fx.model, config, 6);
    const OnlineReport report = driver.run(trace);
    EXPECT_EQ(report.totalRejected, 0u);
    EXPECT_EQ(report.totalAdmitted, report.totalArrivals);
}

/** Churned beliefs (refresh probes under noise) force repairs. */
FrameworkConfig
repairHappyConfig()
{
    FrameworkConfig config;
    config.alpha = 0.0;
    config.noise.sigma = 0.02;
    config.execution.online.refreshProbesPerEpoch = 8;
    return config;
}

TEST(OnlineDriver, RepairsRespectTheMigrationBudget)
{
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 150, 7);
    FrameworkConfig config = repairHappyConfig();
    config.execution.online.migrationBudget = 2;
    // Effectively never fall back to a full re-match.
    config.execution.online.fullRematchBlockingPairs = 100000;

    OnlineDriver driver(fx.catalog, fx.model, config, 8);
    const OnlineReport report = driver.run(trace);

    EXPECT_GT(report.totalPairsBroken, 0u); // the budget was exercised
    EXPECT_EQ(report.totalFullRematches, 0u);
    for (const OnlineEpochStats &e : report.epochs)
        EXPECT_LE(e.pairsBroken, 2u);
}

TEST(OnlineDriver, BlockingFloodTriggersAFullRematch)
{
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 150, 7);
    FrameworkConfig config = repairHappyConfig();
    config.execution.online.fullRematchBlockingPairs = 1;

    OnlineDriver driver(fx.catalog, fx.model, config, 8);
    const OnlineReport report = driver.run(trace);
    EXPECT_GT(report.totalFullRematches, 0u);
}

TEST(OnlineDriver, MidRunCheckpointResumesExactly)
{
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 200, 9);
    FrameworkConfig config;
    // Unbounded queue + generous admission: the prefix run drains
    // without running epochs past the cut, so its final clock lands
    // at or before the cut tick.
    config.execution.online.admitPerEpoch = 64;
    config.execution.online.maxQueueDepth = 0;

    // Straight through.
    OnlineDriver whole(fx.catalog, fx.model, config, 10);
    const OnlineReport whole_report = whole.run(trace);

    // Cut at an epoch boundary mid-trace; replay the prefix.
    const Tick cut = 10 * config.execution.online.epochTicks;
    std::vector<ChurnEvent> head;
    for (const ChurnEvent &event : trace.events())
        if (event.tick < cut)
            head.push_back(event);
    ASSERT_FALSE(head.empty());
    ASSERT_LT(head.size(), trace.size());

    OnlineDriver prefix(fx.catalog, fx.model, config, 10);
    const OnlineReport prefix_report =
        prefix.run(ChurnTrace(std::move(head)));
    ASSERT_LE(prefix.clockTick(), cut);

    // Resume a fresh driver from the checkpoint over the tail.
    OnlineDriver resumed(fx.catalog, fx.model, config, 10);
    resumed.restore(prefix.snapshot());
    const OnlineReport tail_report =
        resumed.run(trace.suffix(resumed.clockTick()));

    // The stitched run must equal the straight-through run: same
    // lifetime totals, same epoch sequence, same final state.
    EXPECT_EQ(tail_report.totalArrivals, whole_report.totalArrivals);
    EXPECT_EQ(tail_report.totalMigrations, whole_report.totalMigrations);
    EXPECT_EQ(tail_report.totalProbes, whole_report.totalProbes);
    ASSERT_EQ(prefix_report.epochs.size() + tail_report.epochs.size(),
              whole_report.epochs.size());
    for (std::size_t i = 0; i < whole_report.epochs.size(); ++i) {
        const OnlineEpochStats &expect = whole_report.epochs[i];
        const OnlineEpochStats &got =
            i < prefix_report.epochs.size()
                ? prefix_report.epochs[i]
                : tail_report.epochs[i - prefix_report.epochs.size()];
        EXPECT_EQ(got.epoch, expect.epoch);
        EXPECT_EQ(got.population, expect.population);
        EXPECT_EQ(got.migrations, expect.migrations);
        EXPECT_EQ(got.meanPenalty, expect.meanPenalty);
    }

    std::ostringstream whole_state, resumed_state;
    writeOnlineState(whole_state, whole.snapshot());
    writeOnlineState(resumed_state, resumed.snapshot());
    EXPECT_EQ(whole_state.str(), resumed_state.str());
}

TEST(OnlineDriver, RestoreRejectsForeignCheckpoints)
{
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 30, 11);
    const FrameworkConfig config;

    OnlineDriver source(fx.catalog, fx.model, config, 12);
    source.run(trace);
    const OnlineState state = source.snapshot();

    OnlineDriver wrong_seed(fx.catalog, fx.model, config, 13);
    EXPECT_THROW(wrong_seed.restore(state), FatalError);

    OnlineState wrong_shape = state;
    wrong_shape.ratings = SparseMatrix(3, 3);
    OnlineDriver shape_check(fx.catalog, fx.model, config, 12);
    EXPECT_THROW(shape_check.restore(wrong_shape), FatalError);

    OnlineState bad_pair = state;
    bad_pair.pairs.assign({{999999, 1000000}});
    OnlineDriver pair_check(fx.catalog, fx.model, config, 12);
    EXPECT_THROW(pair_check.restore(bad_pair), FatalError);
}

TEST(OnlineDriver, RejectsDegenerateConfigs)
{
    const Fixture fx;
    FrameworkConfig config;
    config.execution.online.admitPerEpoch = 0;
    EXPECT_THROW(OnlineDriver(fx.catalog, fx.model, config, 1),
                 FatalError);

    FrameworkConfig zero_ticks;
    zero_ticks.execution.online.epochTicks = 0;
    EXPECT_THROW(OnlineDriver(fx.catalog, fx.model, zero_ticks, 1),
                 FatalError);
}

TEST(OnlineDriver, TraceBeforeTheClockIsFatal)
{
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 40, 14);
    const FrameworkConfig config;

    OnlineDriver driver(fx.catalog, fx.model, config, 15);
    driver.run(trace);
    ASSERT_GT(driver.clockTick(), 0u);
    EXPECT_THROW(driver.run(trace), FatalError);
}

} // namespace
} // namespace cooper
