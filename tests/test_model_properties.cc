/**
 * @file
 * Parameterized property tests for the interference model: penalties
 * respond monotonically to every configuration knob, across the whole
 * catalog.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "sim/interference.hh"
#include "workload/catalog.hh"

namespace cooper {
namespace {

class ModelKnobs
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    Catalog catalog_ = Catalog::paperTableI();
};

TEST_P(ModelKnobs, PenaltiesMonotoneInWeights)
{
    const auto &[i_step, j_step] = GetParam();
    const auto i = static_cast<JobTypeId>(i_step);
    const auto j = static_cast<JobTypeId>(j_step);

    ServerConfig low, high;
    low.idiosyncrasy = high.idiosyncrasy = 0.0;
    high.weightBandwidth = low.weightBandwidth * 2.0;
    high.weightCache = low.weightCache * 2.0;
    InterferenceModel weak(catalog_, low);
    InterferenceModel strong(catalog_, high);
    EXPECT_LE(weak.penalty(i, j), strong.penalty(i, j));
}

TEST_P(ModelKnobs, PenaltiesMonotoneInCacheCapacity)
{
    const auto &[i_step, j_step] = GetParam();
    const auto i = static_cast<JobTypeId>(i_step);
    const auto j = static_cast<JobTypeId>(j_step);

    ServerConfig small, big;
    small.idiosyncrasy = big.idiosyncrasy = 0.0;
    small.llcMB = 10.0;
    big.llcMB = 60.0;
    InterferenceModel cramped(catalog_, small);
    InterferenceModel roomy(catalog_, big);
    // A bigger cache never increases the cache term.
    EXPECT_GE(cramped.penalty(i, j), roomy.penalty(i, j));
}

TEST_P(ModelKnobs, PenaltiesMonotoneInSaturationKnee)
{
    const auto &[i_step, j_step] = GetParam();
    const auto i = static_cast<JobTypeId>(i_step);
    const auto j = static_cast<JobTypeId>(j_step);

    ServerConfig early, late;
    early.idiosyncrasy = late.idiosyncrasy = 0.0;
    early.bwKneeGBps = 5.0;
    late.bwKneeGBps = 50.0;
    InterferenceModel contended(catalog_, early);
    InterferenceModel relaxed(catalog_, late);
    // Saturating earlier never decreases bandwidth contention.
    EXPECT_GE(contended.penalty(i, j), relaxed.penalty(i, j));
}

INSTANTIATE_TEST_SUITE_P(
    CatalogSweep, ModelKnobs,
    ::testing::Combine(::testing::Values(0, 5, 8, 12, 17),
                       ::testing::Values(1, 6, 10, 16, 19)));

} // namespace
} // namespace cooper
