/**
 * @file
 * Unit tests for the item-based collaborative-filtering predictor.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cf/item_knn.hh"
#include "sim/interference.hh"
#include "sim/profiler.hh"
#include "util/error.hh"
#include "util/rng.hh"
#include "workload/catalog.hh"

namespace cooper {
namespace {

TEST(ItemKnn, PreservesObservedCells)
{
    SparseMatrix ratings(3, 3);
    ratings.set(0, 0, 0.1);
    ratings.set(0, 1, 0.2);
    ratings.set(1, 0, 0.15);
    ratings.set(1, 1, 0.25);
    ratings.set(2, 2, 0.4);
    ItemKnnPredictor predictor;
    const Prediction p = predictor.predict(ratings);
    EXPECT_DOUBLE_EQ(p.dense[0][0], 0.1);
    EXPECT_DOUBLE_EQ(p.dense[0][1], 0.2);
    EXPECT_DOUBLE_EQ(p.dense[2][2], 0.4);
}

TEST(ItemKnn, FillsAllCells)
{
    SparseMatrix ratings(4, 4);
    ratings.set(0, 0, 0.1);
    ratings.set(1, 1, 0.2);
    ratings.set(2, 2, 0.3);
    ratings.set(3, 3, 0.4);
    ratings.set(0, 1, 0.12);
    ItemKnnPredictor predictor;
    const Prediction p = predictor.predict(ratings);
    for (const auto &row : p.dense)
        for (double v : row)
            EXPECT_TRUE(std::isfinite(v));
}

TEST(ItemKnn, NoObservationsFatal)
{
    SparseMatrix ratings(2, 2);
    ItemKnnPredictor predictor;
    EXPECT_THROW(predictor.predict(ratings), FatalError);
}

TEST(ItemKnn, ZeroIterationsFatal)
{
    ItemKnnConfig config;
    config.iterations = 0;
    EXPECT_THROW(ItemKnnPredictor{config}, FatalError);
}

TEST(ItemKnn, IdenticalColumnsPerfectlySimilar)
{
    // Two identical items rated by four users.
    SparseMatrix ratings(4, 3);
    for (std::size_t r = 0; r < 4; ++r) {
        const double v = 0.1 * static_cast<double>(r + 1);
        ratings.set(r, 0, v);
        ratings.set(r, 1, v);
        ratings.set(r, 2, 0.5 - v);
    }
    ItemKnnConfig config;
    config.similarity = Similarity::Cosine;
    ItemKnnPredictor predictor(config);
    const auto sim = predictor.similarityMatrix(ratings);
    EXPECT_NEAR(sim[0][1], 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(sim[0][0], 1.0);
    EXPECT_EQ(sim.size(), 3u);
}

TEST(ItemKnn, PredictsFromSimilarItem)
{
    // Item 1 is a clone of item 0; user 3 rated only item 0. The
    // mean-centered prediction anchors on item 1's mean (0.3) and
    // adds user 3's deviation from item 0's mean (0.4 - 0.325), so
    // the filled cell lands near the clone's value.
    SparseMatrix ratings(4, 2);
    ratings.set(0, 0, 0.1);
    ratings.set(0, 1, 0.1);
    ratings.set(1, 0, 0.3);
    ratings.set(1, 1, 0.3);
    ratings.set(2, 0, 0.5);
    ratings.set(2, 1, 0.5);
    ratings.set(3, 0, 0.4);
    ItemKnnConfig config;
    config.similarity = Similarity::Cosine;
    config.iterations = 1;
    ItemKnnPredictor predictor(config);
    const Prediction p = predictor.predict(ratings);
    EXPECT_NEAR(p.dense[3][1], 0.375, 1e-9);
}

TEST(ItemKnn, FullMatrixStopsAfterOneIteration)
{
    SparseMatrix ratings(2, 2);
    ratings.set(0, 0, 1.0);
    ratings.set(0, 1, 2.0);
    ratings.set(1, 0, 3.0);
    ratings.set(1, 1, 4.0);
    ItemKnnConfig config;
    config.iterations = 3;
    ItemKnnPredictor predictor(config);
    const Prediction p = predictor.predict(ratings);
    EXPECT_EQ(p.iterations, 1u);
}

TEST(ItemKnn, RealProfilesHighAccuracyAtQuarterSampling)
{
    // End-to-end on the paper's setting: 20x20 matrix, 25% sampled.
    const Catalog catalog = Catalog::paperTableI();
    const InterferenceModel model(catalog);
    SystemProfiler profiler(model, NoiseConfig{0.004, -0.02}, 11);
    const SparseMatrix profiles = profiler.sampleProfiles(0.25);

    ItemKnnPredictor predictor;
    const Prediction p = predictor.predict(profiles);

    // Predicted penalties should track the ground truth closely for
    // the high-signal (contentious) cells.
    double err = 0.0;
    std::size_t cells = 0;
    for (JobTypeId i = 0; i < catalog.size(); ++i) {
        for (JobTypeId j = 0; j < catalog.size(); ++j) {
            if (profiles.known(i, j))
                continue;
            err += std::abs(p.dense[i][j] - model.penalty(i, j));
            ++cells;
        }
    }
    EXPECT_GT(cells, 0u);
    EXPECT_LT(err / static_cast<double>(cells), 0.035);
}

TEST(ItemKnn, NeighborCapRestrictsAveraging)
{
    // Item 1 clones item 0; item 2 is positively correlated but far
    // from identical. Predicting row 4's missing item-1 cell with a
    // one-neighbor cap must use only the clone, while the uncapped
    // prediction mixes in item 2 and lands elsewhere.
    SparseMatrix ratings(5, 3);
    const double col0[4] = {0.10, 0.30, 0.50, 0.20};
    const double col2[4] = {0.20, 0.30, 0.60, 0.90};
    for (std::size_t r = 0; r < 4; ++r) {
        ratings.set(r, 0, col0[r]);
        ratings.set(r, 1, col0[r]);
        ratings.set(r, 2, col2[r]);
    }
    ratings.set(4, 0, 0.45);
    ratings.set(4, 2, 0.15);

    ItemKnnConfig capped;
    capped.similarity = Similarity::Cosine;
    capped.neighbors = 1;
    capped.iterations = 1;
    ItemKnnConfig full = capped;
    full.neighbors = 0;

    const Prediction a = ItemKnnPredictor(capped).predict(ratings);
    const Prediction b = ItemKnnPredictor(full).predict(ratings);
    EXPECT_GT(std::abs(a.dense[4][1] - b.dense[4][1]), 1e-6);
}

TEST(PreferenceOrder, SortsAscendingAndExcludesSelf)
{
    std::vector<double> penalties{0.3, 0.1, 0.2, 0.05};
    const auto order = preferenceOrder(penalties, 0);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 3u);
    EXPECT_EQ(order[1], 1u);
    EXPECT_EQ(order[2], 2u);
}

TEST(PreferenceOrder, EmptyInput)
{
    EXPECT_TRUE(preferenceOrder({}, 0).empty());
}

} // namespace
} // namespace cooper
