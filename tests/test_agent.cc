/**
 * @file
 * Unit tests for the agent's message protocol and action recommender.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/agent.hh"
#include "util/error.hh"

namespace cooper {
namespace {

// Figure 2's four-user example: A and B prefer each other over their
// assigned partners under the performance-optimal pairing {AD, BC}.
class AgentTest : public ::testing::Test
{
  protected:
    static constexpr double d_[4][4] = {
        {0.00, 0.02, 0.04, 0.09}, // A
        {0.03, 0.00, 0.05, 0.07}, // B
        {0.06, 0.04, 0.00, 0.10}, // C
        {0.05, 0.08, 0.12, 0.00}, // D
    };

    static double disutility(AgentId a, AgentId b) { return d_[a][b]; }

    static std::vector<AgentId>
    prefsFor(AgentId self)
    {
        std::vector<AgentId> prefs;
        for (AgentId j = 0; j < 4; ++j)
            if (j != self)
                prefs.push_back(j);
        std::stable_sort(prefs.begin(), prefs.end(),
                         [&](AgentId x, AgentId y) {
                             return d_[self][x] < d_[self][y];
                         });
        return prefs;
    }

    Matching
    performanceOptimal()
    {
        Matching m(4);
        m.pair(0, 3);
        m.pair(1, 2);
        return m;
    }
};

TEST_F(AgentTest, SelfOnPreferenceListFatal)
{
    Agent agent(1, 0);
    EXPECT_THROW(agent.setPreferences({0, 1, 2}), FatalError);
}

TEST_F(AgentTest, MessageTargetsArePreferredOverPartner)
{
    Agent a(0, 0);
    a.setPreferences(prefsFor(0));
    const auto m = [this]() { return performanceOptimal(); }();
    const auto targets = a.messageTargets(m, disutility, 0.0);
    // A is with D (0.09); it prefers B (0.02) and C (0.04).
    ASSERT_EQ(targets.size(), 2u);
    EXPECT_EQ(targets[0], 1u);
    EXPECT_EQ(targets[1], 2u);
}

TEST_F(AgentTest, AlphaShrinksTargets)
{
    Agent a(0, 0);
    a.setPreferences(prefsFor(0));
    const auto m = performanceOptimal();
    // Gains: B 0.07, C 0.05.
    EXPECT_EQ(a.messageTargets(m, disutility, 0.06).size(), 1u);
    EXPECT_EQ(a.messageTargets(m, disutility, 0.08).size(), 0u);
}

TEST_F(AgentTest, UnmatchedAgentSendsNothing)
{
    Agent a(0, 0);
    a.setPreferences(prefsFor(0));
    Matching m(4); // nobody matched
    EXPECT_TRUE(a.messageTargets(m, disutility, 0.0).empty());
}

TEST_F(AgentTest, MutualMessagesTriggerBreakAway)
{
    Agent a(0, 0);
    a.setPreferences(prefsFor(0));
    const auto m = performanceOptimal();
    // B messaged A (B prefers A over C).
    const Recommendation rec = a.assess(m, {1}, disutility, 0.0);
    EXPECT_EQ(rec.action, ActionKind::BreakAway);
    ASSERT_EQ(rec.options.size(), 1u);
    EXPECT_EQ(rec.options[0].partner, 1u);
    EXPECT_NEAR(rec.options[0].myGain, 0.07, 1e-12);
    EXPECT_NEAR(rec.options[0].partnerGain, 0.02, 1e-12);
}

TEST_F(AgentTest, NonMutualMessageIgnored)
{
    // D messages A (D prefers A over anything), but A does not prefer
    // D, so no break-away.
    Agent a(0, 0);
    a.setPreferences(prefsFor(0));
    const auto m = performanceOptimal();
    const Recommendation rec = a.assess(m, {3}, disutility, 0.0);
    EXPECT_EQ(rec.action, ActionKind::Participate);
    EXPECT_TRUE(rec.options.empty());
}

TEST_F(AgentTest, StablePairingYieldsNoBreakAways)
{
    // Under the stable pairing {AB, CD} the full message exchange
    // discovers no mutual pair: everyone participates.
    Matching m(4);
    m.pair(0, 1);
    m.pair(2, 3);

    std::vector<Agent> agents;
    for (AgentId i = 0; i < 4; ++i) {
        agents.emplace_back(i, 0);
        agents.back().setPreferences(prefsFor(i));
    }
    std::vector<std::vector<AgentId>> inbox(4);
    for (const Agent &agent : agents)
        for (AgentId target :
             agent.messageTargets(m, disutility, 0.0))
            inbox[target].push_back(agent.id());

    for (const Agent &agent : agents) {
        const Recommendation rec =
            agent.assess(m, inbox[agent.id()], disutility, 0.0);
        EXPECT_EQ(rec.action, ActionKind::Participate)
            << "agent " << agent.id();
    }
}

TEST_F(AgentTest, OptionsSortedByGain)
{
    Agent a(0, 0);
    a.setPreferences(prefsFor(0));
    const auto m = performanceOptimal();
    const Recommendation rec = a.assess(m, {2, 1}, disutility, 0.0);
    ASSERT_EQ(rec.options.size(), 2u);
    EXPECT_GE(rec.options[0].myGain, rec.options[1].myGain);
    EXPECT_EQ(rec.options[0].partner, 1u);
}

TEST_F(AgentTest, AccessorsReflectConstruction)
{
    Agent agent(7, 3);
    EXPECT_EQ(agent.id(), 7u);
    EXPECT_EQ(agent.type(), 3u);
}

} // namespace
} // namespace cooper
