/**
 * @file
 * Unit tests for the sparse ratings matrix.
 */

#include <gtest/gtest.h>

#include "cf/sparse_matrix.hh"
#include "util/error.hh"

namespace cooper {
namespace {

TEST(SparseMatrix, StartsEmpty)
{
    SparseMatrix m(3, 4);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    EXPECT_EQ(m.knownCount(), 0u);
    EXPECT_DOUBLE_EQ(m.density(), 0.0);
    EXPECT_FALSE(m.known(0, 0));
}

TEST(SparseMatrix, EmptyShapeFatal)
{
    EXPECT_THROW(SparseMatrix(0, 3), FatalError);
    EXPECT_THROW(SparseMatrix(3, 0), FatalError);
}

TEST(SparseMatrix, SetAndGet)
{
    SparseMatrix m(2, 2);
    m.set(0, 1, 0.25);
    EXPECT_TRUE(m.known(0, 1));
    EXPECT_DOUBLE_EQ(m.at(0, 1), 0.25);
    EXPECT_EQ(m.knownCount(), 1u);
    EXPECT_DOUBLE_EQ(m.density(), 0.25);
}

TEST(SparseMatrix, OverwriteKeepsCount)
{
    SparseMatrix m(2, 2);
    m.set(0, 0, 1.0);
    m.set(0, 0, 2.0);
    EXPECT_EQ(m.knownCount(), 1u);
    EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
}

TEST(SparseMatrix, ClearForgets)
{
    SparseMatrix m(2, 2);
    m.set(1, 1, 3.0);
    m.clear(1, 1);
    EXPECT_FALSE(m.known(1, 1));
    EXPECT_EQ(m.knownCount(), 0u);
    m.clear(1, 1); // clearing twice is harmless
    EXPECT_EQ(m.knownCount(), 0u);
}

TEST(SparseMatrix, AtUnknownFatal)
{
    SparseMatrix m(2, 2);
    EXPECT_THROW(m.at(0, 0), FatalError);
}

TEST(SparseMatrix, OutOfBoundsFatal)
{
    SparseMatrix m(2, 2);
    EXPECT_THROW(m.set(2, 0, 1.0), FatalError);
    EXPECT_THROW(m.at(0, 2), FatalError);
}

TEST(SparseMatrix, ValueOrFallsBack)
{
    SparseMatrix m(2, 2);
    m.set(0, 0, 5.0);
    EXPECT_DOUBLE_EQ(m.valueOr(0, 0, -1.0), 5.0);
    EXPECT_DOUBLE_EQ(m.valueOr(1, 1, -1.0), -1.0);
}

TEST(SparseMatrix, EntriesRowMajor)
{
    SparseMatrix m(2, 2);
    m.set(1, 0, 3.0);
    m.set(0, 1, 2.0);
    const auto entries = m.entries();
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].row, 0u);
    EXPECT_EQ(entries[0].col, 1u);
    EXPECT_DOUBLE_EQ(entries[0].value, 2.0);
    EXPECT_EQ(entries[1].row, 1u);
}

TEST(SparseMatrix, Means)
{
    SparseMatrix m(2, 3);
    m.set(0, 0, 1.0);
    m.set(0, 2, 3.0);
    m.set(1, 1, 5.0);
    EXPECT_DOUBLE_EQ(m.knownMean(), 3.0);
    EXPECT_DOUBLE_EQ(m.rowMean(0, -1.0), 2.0);
    EXPECT_DOUBLE_EQ(m.rowMean(1, -1.0), 5.0);
    EXPECT_DOUBLE_EQ(m.colMean(0, -1.0), 1.0);
    EXPECT_DOUBLE_EQ(m.colMean(1, -1.0), 5.0);
}

TEST(SparseMatrix, MeanFallbacks)
{
    SparseMatrix m(2, 2);
    EXPECT_DOUBLE_EQ(m.knownMean(), 0.0);
    EXPECT_DOUBLE_EQ(m.rowMean(0, 7.0), 7.0);
    EXPECT_DOUBLE_EQ(m.colMean(1, 9.0), 9.0);
}

} // namespace
} // namespace cooper
