/**
 * @file
 * Property tests proving the packed/memoized kernel rewrites are
 * byte-identical to the seed implementations they replaced.
 *
 * The optimized similarity fill, predictor, and blocking scans promise
 * *exact* equality with the baselines in cf/knn_baseline and
 * matching/blocking_baseline — not tolerance-based closeness — across
 * random instances and at every thread count (1, 2, 8). Random values
 * are continuous, so similarity ties (where the seed's capped-neighbor
 * gather order was unspecified) occur with probability zero.
 *
 * This file is also part of the `tsan` suite: at 8 threads the packed
 * fills, the staged prediction writes, and the table-backed scans are
 * exactly the code ThreadSanitizer should vet.
 */

#include <cstring>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "cf/item_knn.hh"
#include "cf/knn_baseline.hh"
#include "matching/blocking.hh"
#include "matching/blocking_baseline.hh"
#include "matching/disutility.hh"
#include "matching/preferences.hh"
#include "matching/stable_roommates.hh"
#include "util/rng.hh"

namespace {

using namespace cooper;

const std::size_t kThreadCounts[] = {1, 2, 8};

bool
sameBits(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        return false;
    return a.empty() ||
           std::memcmp(a.data(), b.data(),
                       a.size() * sizeof(double)) == 0;
}

bool
sameDense(const std::vector<std::vector<double>> &a,
          const std::vector<std::vector<double>> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t r = 0; r < a.size(); ++r)
        if (!sameBits(a[r], b[r]))
            return false;
    return true;
}

/** Random sparse matrix with continuous values; rows or columns may
 *  end up empty, exercising the fallback paths. */
SparseMatrix
randomSparse(std::size_t rows, std::size_t cols, double density,
             Rng &rng)
{
    SparseMatrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            if (rng.uniform() < density)
                m.set(r, c, rng.uniform() * 0.5);
    return m;
}

TEST(KernelEquivalence, SimilarityMatchesBaselineAcrossKindsAndThreads)
{
    Rng rng(101);
    const Similarity kinds[] = {Similarity::Cosine,
                                Similarity::AdjustedCosine,
                                Similarity::Pearson};
    for (int round = 0; round < 8; ++round) {
        const std::size_t rows = 4 + (round * 5) % 29;
        const std::size_t cols = 4 + (round * 7) % 23;
        const double density = 0.2 + 0.1 * (round % 5);
        const SparseMatrix m = randomSparse(rows, cols, density, rng);
        for (Similarity kind : kinds) {
            for (std::size_t min_overlap : {1, 2, 3}) {
                ItemKnnConfig config;
                config.similarity = kind;
                config.minOverlap = min_overlap;
                const auto baseline =
                    baselineSimilarityMatrix(m, config);
                for (std::size_t threads : kThreadCounts) {
                    config.threads = threads;
                    const auto optimized =
                        ItemKnnPredictor(config).similarityMatrix(m);
                    EXPECT_TRUE(sameDense(baseline, optimized))
                        << "round " << round << " kind "
                        << static_cast<int>(kind) << " overlap "
                        << min_overlap << " threads " << threads;
                }
            }
        }
    }
}

TEST(KernelEquivalence, TriangleViewAgreesWithNestedView)
{
    Rng rng(555);
    const SparseMatrix m = randomSparse(17, 13, 0.4, rng);
    ItemKnnConfig config;
    const ItemKnnPredictor predictor(config);
    const SimilarityTriangle tri = predictor.similarityTriangle(m);
    const auto nested = predictor.similarityMatrix(m);
    ASSERT_EQ(tri.items(), nested.size());
    for (std::size_t a = 0; a < nested.size(); ++a)
        for (std::size_t b = 0; b < nested.size(); ++b)
            EXPECT_EQ(tri.at(a, b), nested[a][b]) << a << "," << b;
}

TEST(KernelEquivalence, PredictMatchesBaselineAcrossConfigsAndThreads)
{
    Rng rng(202);
    for (int round = 0; round < 5; ++round) {
        const std::size_t n = 6 + (round * 9) % 26;
        const SparseMatrix m =
            randomSparse(n, n, 0.25 + 0.1 * (round % 4), rng);
        for (std::size_t neighbors : {0, 4}) {
            for (bool bidirectional : {false, true}) {
                ItemKnnConfig config;
                config.neighbors = neighbors;
                config.bidirectional = bidirectional;
                config.iterations = 1 + (round % 2);
                const Prediction baseline =
                    baselinePredict(m, config);
                for (std::size_t threads : kThreadCounts) {
                    config.threads = threads;
                    const Prediction optimized =
                        ItemKnnPredictor(config).predict(m);
                    EXPECT_TRUE(
                        sameDense(baseline.dense, optimized.dense))
                        << "round " << round << " k " << neighbors
                        << " bidir " << bidirectional << " threads "
                        << threads;
                    EXPECT_EQ(baseline.iterations,
                              optimized.iterations);
                    EXPECT_EQ(baseline.fallbackCells,
                              optimized.fallbackCells);
                }
            }
        }
    }
}

TEST(KernelEquivalence, PredictHandlesNonSquareMatrices)
{
    Rng rng(303);
    const SparseMatrix m = randomSparse(14, 9, 0.4, rng);
    ItemKnnConfig config;
    config.bidirectional = true; // ignored: matrix is not square
    const Prediction baseline = baselinePredict(m, config);
    for (std::size_t threads : kThreadCounts) {
        config.threads = threads;
        const Prediction optimized =
            ItemKnnPredictor(config).predict(m);
        EXPECT_TRUE(sameDense(baseline.dense, optimized.dense))
            << "threads " << threads;
    }
}

TEST(KernelEquivalence, EdgeShapesMatchBaseline)
{
    // Degenerate shapes the random rounds above hit rarely or never:
    // a 1x1 catalog, columns with no known cells, masks shorter than
    // one 64-bit word, and duplicate columns (zero variance, so the
    // Pearson/adjusted-cosine denominators vanish). SparseMatrix
    // rejects 0x0, so n = 1 is the smallest buildable catalog.
    std::vector<SparseMatrix> shapes;

    SparseMatrix one(1, 1);
    one.set(0, 0, 0.3);
    shapes.push_back(one);

    // Columns 3..5 entirely unknown; rows 4+ entirely unknown too.
    SparseMatrix sparse_cols(12, 6);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            sparse_cols.set(r, c, 0.1 * double(r + 1) + 0.01 * double(c));
    shapes.push_back(sparse_cols);

    // Two rows: every column mask fits far inside one word.
    SparseMatrix tiny_rows(2, 5);
    tiny_rows.set(0, 0, 0.4);
    tiny_rows.set(0, 2, 0.2);
    tiny_rows.set(1, 0, 0.6);
    tiny_rows.set(1, 3, 0.5);
    shapes.push_back(tiny_rows);

    // Columns 1 and 2 duplicate column 0 exactly; column 3 is
    // constant (zero variance after centering).
    SparseMatrix duplicates(6, 4);
    for (std::size_t r = 0; r < 6; ++r) {
        const double v = 0.05 * double(r + 1);
        duplicates.set(r, 0, v);
        duplicates.set(r, 1, v);
        duplicates.set(r, 2, v);
        duplicates.set(r, 3, 0.25);
    }
    shapes.push_back(duplicates);

    const Similarity kinds[] = {Similarity::Cosine,
                                Similarity::AdjustedCosine,
                                Similarity::Pearson};
    for (std::size_t s = 0; s < shapes.size(); ++s) {
        const SparseMatrix &m = shapes[s];
        for (Similarity kind : kinds) {
            ItemKnnConfig config;
            config.similarity = kind;
            config.minOverlap = 1;
            const auto sim_baseline = baselineSimilarityMatrix(m, config);
            const Prediction baseline = baselinePredict(m, config);
            for (std::size_t threads : kThreadCounts) {
                config.threads = threads;
                const ItemKnnPredictor predictor(config);
                EXPECT_TRUE(
                    sameDense(sim_baseline, predictor.similarityMatrix(m)))
                    << "shape " << s << " kind "
                    << static_cast<int>(kind) << " threads " << threads;
                const Prediction optimized = predictor.predict(m);
                EXPECT_TRUE(sameDense(baseline.dense, optimized.dense))
                    << "shape " << s << " kind "
                    << static_cast<int>(kind) << " threads " << threads;
                EXPECT_EQ(baseline.fallbackCells,
                          optimized.fallbackCells);
            }
        }
    }
}

/** Random even matching plus a continuous penalty table. */
struct BlockingInstance
{
    Matching matching{0};
    std::vector<std::vector<double>> penalty;
    DisutilityFn fn;
    DisutilityTable table;
};

BlockingInstance
randomBlockingInstance(std::size_t n, Rng &rng)
{
    BlockingInstance out;
    out.penalty.assign(n, std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            out.penalty[i][j] = rng.uniform() * 0.3;
    out.fn = [penalty = out.penalty](AgentId a, AgentId b) {
        return penalty[a][b];
    };
    out.matching = Matching(n);
    const auto order = rng.permutation(n);
    // Leave a few agents unmatched to exercise that branch.
    for (std::size_t i = 0; i + 1 < n - n / 8; i += 2)
        out.matching.pair(order[i], order[i + 1]);
    out.table = DisutilityTable(n, n, out.fn);
    return out;
}

TEST(KernelEquivalence, BlockingScanMatchesBaselineAcrossThreads)
{
    Rng rng(404);
    for (int round = 0; round < 6; ++round) {
        const std::size_t n = 12 + (round * 17) % 53;
        const BlockingInstance inst = randomBlockingInstance(n, rng);
        // Alpha sweep includes values high enough for the rowMin
        // pruning bound to skip most rows; the counts must not move.
        for (double alpha : {0.0, 0.02, 0.2}) {
            const auto baseline = baselineFindBlockingPairs(
                inst.matching, inst.fn, alpha);
            for (std::size_t threads : kThreadCounts) {
                const auto via_fn = findBlockingPairs(
                    inst.matching, inst.fn, alpha, threads);
                const auto via_table = findBlockingPairs(
                    inst.matching, inst.table, alpha, threads);
                ASSERT_EQ(baseline.size(), via_fn.size());
                ASSERT_EQ(baseline.size(), via_table.size());
                for (std::size_t i = 0; i < baseline.size(); ++i) {
                    EXPECT_EQ(baseline[i].a, via_table[i].a);
                    EXPECT_EQ(baseline[i].b, via_table[i].b);
                    EXPECT_EQ(baseline[i].gainA, via_table[i].gainA);
                    EXPECT_EQ(baseline[i].gainB, via_table[i].gainB);
                    EXPECT_EQ(baseline[i].a, via_fn[i].a);
                    EXPECT_EQ(baseline[i].b, via_fn[i].b);
                }
                EXPECT_EQ(baseline.size(),
                          countBlockingPairs(inst.matching, inst.fn,
                                             alpha, threads));
                EXPECT_EQ(baseline.size(),
                          countBlockingPairs(inst.matching, inst.table,
                                             alpha, threads));
            }
            const auto first_fn =
                firstBlockingPair(inst.matching, inst.fn, alpha);
            const auto first_table =
                firstBlockingPair(inst.matching, inst.table, alpha);
            ASSERT_EQ(baseline.empty(), !first_fn.has_value());
            ASSERT_EQ(baseline.empty(), !first_table.has_value());
            if (!baseline.empty()) {
                EXPECT_EQ(baseline.front().a, first_fn->a);
                EXPECT_EQ(baseline.front().b, first_fn->b);
                EXPECT_EQ(baseline.front().a, first_table->a);
                EXPECT_EQ(baseline.front().b, first_table->b);
                EXPECT_EQ(baseline.front().gainA, first_table->gainA);
                EXPECT_EQ(baseline.front().gainB, first_table->gainB);
            }
        }
    }
}

TEST(KernelEquivalence, PreferenceProfileFromTableMatchesFromOracle)
{
    Rng rng(505);
    for (int round = 0; round < 4; ++round) {
        const std::size_t n = 5 + (round * 11) % 37;
        std::vector<std::vector<double>> penalty(
            n, std::vector<double>(n, 0.0));
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j)
                penalty[i][j] = rng.uniform();
        const DisutilityFn fn = [&](AgentId a, AgentId b) {
            return penalty[a][b];
        };
        const DisutilityTable table(n, n, fn);
        for (bool exclude_self : {false, true}) {
            const PreferenceProfile via_fn =
                PreferenceProfile::fromDisutility(n, n, fn,
                                                  exclude_self);
            const PreferenceProfile via_table =
                PreferenceProfile::fromTable(table, exclude_self);
            ASSERT_EQ(via_fn.agents(), via_table.agents());
            for (AgentId i = 0; i < n; ++i)
                EXPECT_EQ(via_fn.list(i), via_table.list(i))
                    << "agent " << i << " exclude_self "
                    << exclude_self;
        }
    }
}

TEST(KernelEquivalence, DisutilityTableRowMinIsExact)
{
    Rng rng(606);
    const std::size_t n = 23;
    std::vector<std::vector<double>> penalty(
        n, std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            penalty[i][j] = rng.uniform();
    for (std::size_t threads : kThreadCounts) {
        const DisutilityTable table(
            n, n,
            [&](AgentId a, AgentId b) { return penalty[a][b]; },
            threads);
        for (AgentId a = 0; a < n; ++a) {
            double expect = penalty[a][0];
            for (std::size_t b = 1; b < n; ++b)
                expect = std::min(expect, penalty[a][b]);
            EXPECT_EQ(expect, table.rowMin(a)) << "agent " << a;
            for (AgentId b = 0; b < n; ++b)
                EXPECT_EQ(penalty[a][b], table(a, b));
        }
    }
}

TEST(KernelEquivalence, RoommatesTableOverloadMatchesOracleOverload)
{
    Rng rng(707);
    const std::size_t n = 16;
    std::vector<std::vector<double>> penalty(
        n, std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            penalty[i][j] = rng.uniform();
    const DisutilityFn fn = [&](AgentId a, AgentId b) {
        return penalty[a][b];
    };
    const DisutilityTable table(n, n, fn);
    const PreferenceProfile prefs =
        PreferenceProfile::fromTable(table, /*exclude_self=*/true);
    const RoommatesResult via_fn = adaptedRoommates(prefs, fn);
    const RoommatesResult via_table = adaptedRoommates(prefs, table);
    for (AgentId a = 0; a < n; ++a)
        EXPECT_EQ(via_fn.matching.partnerOf(a),
                  via_table.matching.partnerOf(a));
    EXPECT_EQ(via_fn.perfectlyStable, via_table.perfectlyStable);
    EXPECT_EQ(via_fn.fallbackAgents, via_table.fallbackAgents);
}

} // namespace
