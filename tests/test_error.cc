/**
 * @file
 * Unit tests for the error-handling helpers.
 */

#include <gtest/gtest.h>

#include "util/error.hh"

namespace cooper {
namespace {

TEST(Error, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("boom"), FatalError);
}

TEST(Error, PanicThrowsLogicError)
{
    EXPECT_THROW(panic("bug"), LogicError);
}

TEST(Error, MessagesConcatenateArguments)
{
    try {
        fatal("value ", 42, " exceeds ", 1.5);
        FAIL() << "fatal must throw";
    } catch (const FatalError &err) {
        EXPECT_STREQ(err.what(), "value 42 exceeds 1.5");
    }
}

TEST(Error, FatalIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(fatalIf(false, "never"));
    EXPECT_THROW(fatalIf(true, "always"), FatalError);
}

TEST(Error, PanicIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(panicIf(false, "never"));
    EXPECT_THROW(panicIf(true, "always"), LogicError);
}

TEST(Error, FatalAndLogicAreDistinctHierarchies)
{
    // fatal() reports user error, panic() internal bugs; callers must
    // be able to catch them separately.
    EXPECT_THROW(
        {
            try {
                panic("internal");
            } catch (const FatalError &) {
                // wrong handler: LogicError is not a FatalError
            }
        },
        LogicError);
}

TEST(Error, FormatMessageEmpty)
{
    EXPECT_EQ(formatMessage(), "");
    EXPECT_EQ(formatMessage("x"), "x");
}

} // namespace
} // namespace cooper
