/**
 * @file
 * Unit tests for multi-co-runner colocation (Section VIII extension).
 */

#include <gtest/gtest.h>

#include <array>

#include "core/experiment.hh"
#include "core/groups.hh"
#include "game/fairness.hh"
#include "stats/correlation.hh"
#include "util/error.hh"

namespace cooper {
namespace {

class GroupsTest : public ::testing::Test
{
  protected:
    Catalog catalog_ = Catalog::paperTableI();
    InterferenceModel model_{catalog_};

    JobTypeId id(const std::string &name) const
    {
        return catalog_.jobByName(name).id;
    }

    ColocationInstance
    makeInstance(std::size_t n, std::uint64_t seed = 1)
    {
        Rng rng(seed);
        return sampleInstance(catalog_, model_, n, MixKind::Uniform,
                              rng);
    }
};

TEST_F(GroupsTest, GroupPenaltyOfPairMatchesPairwiseModel)
{
    for (JobTypeId i = 0; i < catalog_.size(); i += 4) {
        for (JobTypeId j = 0; j < catalog_.size(); j += 3) {
            const std::array<JobTypeId, 1> others{j};
            EXPECT_DOUBLE_EQ(model_.groupPenalty(i, others),
                             model_.penalty(i, j));
        }
    }
}

TEST_F(GroupsTest, MoreCoRunnersMorePenalty)
{
    const JobTypeId victim = id("svm");
    const std::array<JobTypeId, 1> one{id("decision")};
    const std::array<JobTypeId, 2> two{id("decision"), id("gradient")};
    const std::array<JobTypeId, 3> three{id("decision"), id("gradient"),
                                         id("naive")};
    EXPECT_LT(model_.groupPenalty(victim, one),
              model_.groupPenalty(victim, two));
    EXPECT_LT(model_.groupPenalty(victim, two),
              model_.groupPenalty(victim, three));
}

TEST_F(GroupsTest, EmptyGroupFatal)
{
    EXPECT_THROW(model_.groupPenalty(0, {}), FatalError);
}

TEST_F(GroupsTest, GroupingPartitionChecks)
{
    Grouping g;
    g.groups = {{0, 1}, {2, 3}};
    EXPECT_TRUE(g.isPartitionOf(4));
    EXPECT_EQ(g.agentCount(), 4u);
    EXPECT_FALSE(g.isPartitionOf(5)); // agent 4 missing

    Grouping dup;
    dup.groups = {{0, 1}, {1, 2}};
    EXPECT_FALSE(dup.isPartitionOf(3));
}

TEST_F(GroupsTest, TrueGroupPenaltyRequiresMembership)
{
    const auto instance = makeInstance(8);
    const std::vector<AgentId> group{0, 1, 2, 3};
    EXPECT_GT(trueGroupPenalty(instance, model_, 0, group), 0.0);
    EXPECT_THROW(trueGroupPenalty(instance, model_, 7, group),
                 FatalError);
}

TEST_F(GroupsTest, SingletonGroupHasZeroPenalty)
{
    const auto instance = makeInstance(4);
    const std::vector<AgentId> alone{2};
    EXPECT_DOUBLE_EQ(trueGroupPenalty(instance, model_, 2, alone), 0.0);
}

TEST_F(GroupsTest, HierarchicalPartitionsIntoRequestedSize)
{
    const auto instance = makeInstance(64, 3);
    Rng rng(1);
    for (std::size_t size : {2u, 4u, 8u}) {
        const Grouping g = hierarchicalGroups(instance, size, rng);
        EXPECT_TRUE(g.isPartitionOf(64)) << "size " << size;
        for (const auto &group : g.groups)
            EXPECT_EQ(group.size(), size) << "size " << size;
    }
}

TEST_F(GroupsTest, HierarchicalRejectsBadSizes)
{
    const auto instance = makeInstance(8);
    Rng rng(1);
    EXPECT_THROW(hierarchicalGroups(instance, 3, rng), FatalError);
    EXPECT_THROW(hierarchicalGroups(instance, 1, rng), FatalError);
}

TEST_F(GroupsTest, HierarchicalPairsEqualStableRoommatePolicy)
{
    // With group size 2 the hierarchy is exactly one roommates round.
    const auto instance = makeInstance(40, 5);
    Rng rng_a(1), rng_b(1);
    const Grouping g = hierarchicalGroups(instance, 2, rng_a);
    const Matching m = StableRoommatePolicy().assign(instance, rng_b);
    for (const auto &group : g.groups) {
        ASSERT_EQ(group.size(), 2u);
        EXPECT_EQ(m.partnerOf(group[0]), group[1]);
    }
}

TEST_F(GroupsTest, GreedyGroupsRespectCapacity)
{
    const auto instance = makeInstance(50, 7);
    Rng rng(2);
    const Grouping g = greedyGroups(instance, 4, rng);
    EXPECT_TRUE(g.isPartitionOf(50));
    for (const auto &group : g.groups)
        EXPECT_LE(group.size(), 4u);
    // ceil(50 / 4) = 13 machines.
    EXPECT_EQ(g.groups.size(), 13u);
}

TEST_F(GroupsTest, RandomGroupsChopEvenly)
{
    const auto instance = makeInstance(30, 9);
    Rng rng(3);
    const Grouping g = randomGroups(instance, 3, rng);
    EXPECT_TRUE(g.isPartitionOf(30));
    EXPECT_EQ(g.groups.size(), 10u);
}

TEST_F(GroupsTest, HierarchicalFairerThanGreedyAtSizeFour)
{
    const auto instance = makeInstance(200, 11);
    Rng rng_h(1), rng_g(1);
    const Grouping hier = hierarchicalGroups(instance, 4, rng_h);
    const Grouping greedy = greedyGroups(instance, 4, rng_g);

    auto fairness_of = [&](const Grouping &g) {
        const auto penalties =
            trueGroupPenalties(instance, model_, g);
        std::vector<double> demand, penalty;
        for (AgentId a = 0; a < instance.agents(); ++a) {
            demand.push_back(
                catalog_.job(instance.typeOf(a)).gbps);
            penalty.push_back(penalties[a]);
        }
        return spearman(demand, penalty);
    };
    EXPECT_GT(fairness_of(hier), fairness_of(greedy));
}

} // namespace
} // namespace cooper
