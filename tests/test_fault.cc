/**
 * @file
 * Unit tests for the fault plane: FaultPlan decisions are pure
 * functions of their keys (the determinism the online service's
 * degraded paths are built on), the script parser accepts the
 * documented schema and rejects everything else, and the quarantine
 * table is plain deterministic state.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/plan.hh"
#include "fault/quarantine.hh"
#include "util/error.hh"

namespace cooper {
namespace {

TEST(FaultKind, NamesRoundTrip)
{
    const FaultKind kinds[] = {
        FaultKind::ProbeTimeout,   FaultKind::MeasurementDrop,
        FaultKind::MeasurementCorrupt, FaultKind::NodeCrash,
        FaultKind::CheckpointFail};
    for (FaultKind kind : kinds)
        EXPECT_EQ(faultKindFromName(faultKindName(kind)), kind);
    EXPECT_THROW(faultKindFromName("meteor_strike"), FatalError);
}

TEST(FaultPlan, InertByDefault)
{
    const FaultPlan plan;
    EXPECT_FALSE(plan.enabled());
    for (std::uint64_t epoch = 0; epoch < 8; ++epoch) {
        EXPECT_FALSE(plan.probeTimesOut(epoch, 3, 0));
        EXPECT_FALSE(plan.measurementDrops(epoch, 3, 0));
        EXPECT_DOUBLE_EQ(plan.corruption(epoch, 3, 0), 0.0);
        EXPECT_FALSE(plan.checkpointFails(epoch));
        EXPECT_TRUE(plan.crashVictims(epoch, {1, 2, 3}).empty());
    }
}

TEST(FaultPlan, DecisionsArePureFunctionsOfTheirKeys)
{
    FaultSpec spec;
    spec.seed = 77;
    spec.probeTimeoutRate = 0.3;
    spec.measurementDropRate = 0.2;
    spec.measurementCorruptRate = 0.2;
    spec.crashRatePerEpoch = 0.5;
    spec.checkpointFailRate = 0.4;
    const FaultPlan a(spec), b(spec);
    EXPECT_TRUE(a == b);

    const std::vector<std::uint64_t> live{2, 5, 9, 11};
    for (std::uint64_t epoch = 0; epoch < 16; ++epoch) {
        for (std::uint64_t uid = 0; uid < 6; ++uid) {
            for (std::uint64_t attempt = 0; attempt < 4; ++attempt) {
                // Same key, same answer — across plans and across
                // repeated asks of the same plan (statelessness).
                EXPECT_EQ(a.probeTimesOut(epoch, uid, attempt),
                          b.probeTimesOut(epoch, uid, attempt));
                EXPECT_EQ(a.probeTimesOut(epoch, uid, attempt),
                          a.probeTimesOut(epoch, uid, attempt));
                EXPECT_EQ(a.measurementDrops(epoch, uid, attempt),
                          b.measurementDrops(epoch, uid, attempt));
                EXPECT_DOUBLE_EQ(a.corruption(epoch, uid, attempt),
                                 b.corruption(epoch, uid, attempt));
            }
        }
        EXPECT_EQ(a.checkpointFails(epoch), b.checkpointFails(epoch));
        EXPECT_EQ(a.crashVictims(epoch, live), b.crashVictims(epoch, live));
    }
}

TEST(FaultPlan, DifferentSeedsGiveDifferentSchedules)
{
    FaultSpec one;
    one.seed = 1;
    one.probeTimeoutRate = 0.5;
    FaultSpec two = one;
    two.seed = 2;
    const FaultPlan a(one), b(two);

    bool differs = false;
    for (std::uint64_t key = 0; key < 64 && !differs; ++key)
        differs = a.probeTimesOut(0, key, 0) != b.probeTimesOut(0, key, 0);
    EXPECT_TRUE(differs);
}

TEST(FaultPlan, ExtremeRatesAlwaysAndNeverFire)
{
    FaultSpec always;
    always.seed = 3;
    always.probeTimeoutRate = 1.0;
    always.measurementDropRate = 1.0;
    always.checkpointFailRate = 1.0;
    always.crashRatePerEpoch = 1.0;
    const FaultPlan hot(always);
    const FaultPlan cold; // all rates zero

    const std::vector<std::uint64_t> live{4, 8};
    for (std::uint64_t epoch = 0; epoch < 8; ++epoch) {
        EXPECT_TRUE(hot.probeTimesOut(epoch, epoch, 0));
        EXPECT_TRUE(hot.measurementDrops(epoch, epoch, 1));
        EXPECT_TRUE(hot.checkpointFails(epoch));
        EXPECT_EQ(hot.crashVictims(epoch, live).size(), 1u);
        EXPECT_FALSE(cold.probeTimesOut(epoch, epoch, 0));
        EXPECT_FALSE(cold.checkpointFails(epoch));
    }
    EXPECT_TRUE(hot.crashVictims(0, {}).empty());
}

TEST(FaultPlan, ScriptedEventsOverlayZeroRates)
{
    std::vector<ScriptedFault> script;
    ScriptedFault timeout;
    timeout.epoch = 4;
    timeout.kind = FaultKind::ProbeTimeout;
    timeout.hasUid = true;
    timeout.uid = 9;
    script.push_back(timeout);

    ScriptedFault corrupt;
    corrupt.epoch = 5;
    corrupt.kind = FaultKind::MeasurementCorrupt;
    corrupt.hasUid = false; // every uid that epoch
    corrupt.magnitude = 0.25;
    script.push_back(corrupt);

    ScriptedFault checkpoint;
    checkpoint.epoch = 6;
    checkpoint.kind = FaultKind::CheckpointFail;
    script.push_back(checkpoint);

    const FaultPlan plan(FaultSpec{}, script);
    EXPECT_TRUE(plan.enabled());

    // The scripted timeout hits every attempt of uid 9 at epoch 4 and
    // nothing else.
    EXPECT_TRUE(plan.probeTimesOut(4, 9, 0));
    EXPECT_TRUE(plan.probeTimesOut(4, 9, 3));
    EXPECT_FALSE(plan.probeTimesOut(4, 8, 0));
    EXPECT_FALSE(plan.probeTimesOut(3, 9, 0));

    // The untargeted corruption applies to all uids at epoch 5.
    EXPECT_DOUBLE_EQ(plan.corruption(5, 1, 0), 0.25);
    EXPECT_DOUBLE_EQ(plan.corruption(5, 40, 2), 0.25);
    EXPECT_DOUBLE_EQ(plan.corruption(4, 1, 0), 0.0);

    EXPECT_TRUE(plan.checkpointFails(6));
    EXPECT_FALSE(plan.checkpointFails(5));
}

TEST(FaultPlan, ScriptedCrashesNameTheirVictim)
{
    std::vector<ScriptedFault> script;
    ScriptedFault crash;
    crash.epoch = 2;
    crash.kind = FaultKind::NodeCrash;
    crash.hasUid = true;
    crash.uid = 7;
    script.push_back(crash);
    const FaultPlan plan(FaultSpec{}, script);

    const std::vector<std::uint64_t> with{3, 7, 11};
    const std::vector<std::uint64_t> without{3, 11};
    EXPECT_EQ(plan.crashVictims(2, with),
              std::vector<std::uint64_t>{7});
    // A scripted victim that already departed is ignored.
    EXPECT_TRUE(plan.crashVictims(2, without).empty());
    EXPECT_TRUE(plan.crashVictims(1, with).empty());
}

TEST(FaultPlan, ParsesTheDocumentedSchema)
{
    const std::string text = R"({
        "schema": "cooper.faultplan.v1",
        "seed": 42,
        "rates": { "probe_timeout": 0.2, "measurement_drop": 0.1,
                   "measurement_corrupt": 0.05, "corrupt_sigma": 0.3,
                   "crash_per_epoch": 0.01, "checkpoint_fail": 0.5 },
        "events": [ { "epoch": 3, "kind": "crash", "uid": 7 },
                    { "epoch": 2, "kind": "probe_timeout", "uid": 5 },
                    { "epoch": 4, "kind": "checkpoint_fail" } ] })";
    const FaultPlan plan = parseFaultPlan(text, /*default_seed=*/1);
    EXPECT_TRUE(plan.enabled());
    EXPECT_EQ(plan.spec().seed, 42u);
    EXPECT_DOUBLE_EQ(plan.spec().probeTimeoutRate, 0.2);
    EXPECT_DOUBLE_EQ(plan.spec().corruptSigma, 0.3);
    EXPECT_DOUBLE_EQ(plan.spec().checkpointFailRate, 0.5);

    // Script entries come back sorted by (epoch, kind, uid).
    ASSERT_EQ(plan.script().size(), 3u);
    EXPECT_EQ(plan.script()[0].epoch, 2u);
    EXPECT_EQ(plan.script()[0].kind, FaultKind::ProbeTimeout);
    EXPECT_EQ(plan.script()[1].epoch, 3u);
    EXPECT_EQ(plan.script()[1].kind, FaultKind::NodeCrash);
    EXPECT_TRUE(plan.script()[1].hasUid);
    EXPECT_EQ(plan.script()[1].uid, 7u);
    EXPECT_EQ(plan.script()[2].kind, FaultKind::CheckpointFail);
    EXPECT_FALSE(plan.script()[2].hasUid);
}

TEST(FaultPlan, ParseDefaultsSeedAndOmittedSections)
{
    const FaultPlan plan =
        parseFaultPlan(R"({ "schema": "cooper.faultplan.v1" })", 99);
    EXPECT_FALSE(plan.enabled());
    EXPECT_EQ(plan.spec().seed, 99u);
    EXPECT_TRUE(plan.script().empty());
}

TEST(FaultPlan, ParseRejectsMalformedDocuments)
{
    EXPECT_THROW(parseFaultPlan("not json"), FatalError);
    EXPECT_THROW(parseFaultPlan(R"({ "schema": "wrong.v1" })"),
                 FatalError);
    EXPECT_THROW(
        parseFaultPlan(R"({ "schema": "cooper.faultplan.v1",
                            "rates": { "probe_timeout": 1.5 } })"),
        FatalError);
    EXPECT_THROW(
        parseFaultPlan(R"({ "schema": "cooper.faultplan.v1",
                            "events": [ { "epoch": 0,
                                          "kind": "meteor" } ] })"),
        FatalError);
}

TEST(QuarantineTable, AddRemoveRelease)
{
    QuarantineTable table;
    EXPECT_TRUE(table.empty());

    QuarantinedJob a;
    a.uid = 9;
    a.type = 2;
    a.failures = 3;
    a.untilEpoch = 5;
    a.rounds = 1;
    QuarantinedJob b = a;
    b.uid = 4;
    b.untilEpoch = 7;
    table.add(a);
    table.add(b);
    EXPECT_EQ(table.size(), 2u);
    EXPECT_TRUE(table.contains(9));
    EXPECT_FALSE(table.contains(1));

    // Nothing due before the earliest untilEpoch.
    EXPECT_TRUE(table.releaseDue(4).empty());

    // Due entries pop in ascending-uid order and leave the table.
    const std::vector<QuarantinedJob> due = table.releaseDue(7);
    ASSERT_EQ(due.size(), 2u);
    EXPECT_EQ(due[0].uid, 4u);
    EXPECT_EQ(due[1].uid, 9u);
    EXPECT_TRUE(table.empty());

    // Remove reports presence.
    table.add(a);
    EXPECT_TRUE(table.remove(9));
    EXPECT_FALSE(table.remove(9));
}

TEST(QuarantineTable, SnapshotRoundTrips)
{
    QuarantineTable table;
    for (std::uint64_t uid : {11, 3, 7}) {
        QuarantinedJob job;
        job.uid = uid;
        job.type = uid % 4;
        job.failures = uid + 1;
        job.untilEpoch = uid * 2;
        job.rounds = uid % 3;
        table.add(job);
    }
    const std::vector<QuarantinedJob> snap = table.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].uid, 3u); // ascending by uid
    EXPECT_EQ(snap[1].uid, 7u);
    EXPECT_EQ(snap[2].uid, 11u);

    QuarantineTable restored;
    restored.restore(snap);
    EXPECT_EQ(restored.snapshot(), snap);
}

} // namespace
} // namespace cooper
