/**
 * @file
 * Unit tests for correlation measures.
 */

#include <gtest/gtest.h>

#include <vector>

#include "stats/correlation.hh"
#include "util/error.hh"
#include "util/rng.hh"

namespace cooper {
namespace {

TEST(Correlation, PearsonPerfectPositive)
{
    std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    std::vector<double> ys{2.0, 4.0, 6.0, 8.0};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Correlation, PearsonPerfectNegative)
{
    std::vector<double> xs{1.0, 2.0, 3.0};
    std::vector<double> ys{3.0, 2.0, 1.0};
    EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Correlation, PearsonFlatSeriesIsZero)
{
    std::vector<double> xs{1.0, 2.0, 3.0};
    std::vector<double> ys{5.0, 5.0, 5.0};
    EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Correlation, PearsonSizeMismatchFatal)
{
    std::vector<double> xs{1.0, 2.0};
    std::vector<double> ys{1.0};
    EXPECT_THROW(pearson(xs, ys), FatalError);
}

TEST(Correlation, PearsonIndependentNearZero)
{
    Rng rng(99);
    std::vector<double> xs, ys;
    for (int i = 0; i < 20000; ++i) {
        xs.push_back(rng.uniform());
        ys.push_back(rng.uniform());
    }
    EXPECT_NEAR(pearson(xs, ys), 0.0, 0.02);
}

TEST(Correlation, SpearmanMonotoneNonlinear)
{
    // Monotone but nonlinear: Spearman sees a perfect rank relation.
    std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
    std::vector<double> ys{1.0, 8.0, 27.0, 64.0, 125.0};
    EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
    EXPECT_LT(pearson(xs, ys), 1.0);
}

TEST(Correlation, SpearmanHandlesTies)
{
    std::vector<double> xs{1.0, 2.0, 2.0, 4.0};
    std::vector<double> ys{1.0, 3.0, 3.0, 4.0};
    EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

TEST(Correlation, KendallPerfectAgreement)
{
    std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    std::vector<double> ys{10.0, 20.0, 30.0, 40.0};
    EXPECT_NEAR(kendallTau(xs, ys), 1.0, 1e-12);
}

TEST(Correlation, KendallPerfectDisagreement)
{
    std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    std::vector<double> ys{4.0, 3.0, 2.0, 1.0};
    EXPECT_NEAR(kendallTau(xs, ys), -1.0, 1e-12);
}

TEST(Correlation, KendallKnownValue)
{
    // One discordant pair among six: tau = (5 - 1) / 6.
    std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    std::vector<double> ys{1.0, 2.0, 4.0, 3.0};
    EXPECT_NEAR(kendallTau(xs, ys), 4.0 / 6.0, 1e-12);
}

TEST(Correlation, KendallDegenerate)
{
    std::vector<double> xs{1.0};
    std::vector<double> ys{1.0};
    EXPECT_DOUBLE_EQ(kendallTau(xs, ys), 0.0);
    std::vector<double> flat{2.0, 2.0, 2.0};
    std::vector<double> rise{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(kendallTau(flat, rise), 0.0);
}

} // namespace
} // namespace cooper
