/**
 * @file
 * Unit tests for blocking-pair analysis.
 */

#include <gtest/gtest.h>

#include "matching/blocking.hh"
#include "util/error.hh"

namespace cooper {
namespace {

/** 4-agent disutility table from the Figure 2 discussion. */
class BlockingTest : public ::testing::Test
{
  protected:
    // d[i][j]: agent i's penalty with co-runner j. A prefers B most;
    // A and B prefer each other; the {AD, BC} pairing minimizes total
    // penalty but leaves the blocking pair (A, B).
    static constexpr double d_[4][4] = {
        {0.00, 0.02, 0.04, 0.09}, // A
        {0.03, 0.00, 0.05, 0.07}, // B
        {0.06, 0.04, 0.00, 0.10}, // C
        {0.05, 0.08, 0.12, 0.00}, // D
    };

    static double disutility(AgentId a, AgentId b) { return d_[a][b]; }
};

TEST_F(BlockingTest, PerformanceOptimalPairingHasBlockingPair)
{
    Matching m(4);
    m.pair(0, 3); // AD
    m.pair(1, 2); // BC
    const auto pairs = findBlockingPairs(m, disutility, 0.0);
    ASSERT_EQ(pairs.size(), 1u);
    EXPECT_EQ(pairs[0].a, 0u);
    EXPECT_EQ(pairs[0].b, 1u);
    EXPECT_NEAR(pairs[0].gainA, 0.09 - 0.02, 1e-12);
    EXPECT_NEAR(pairs[0].gainB, 0.05 - 0.03, 1e-12);
}

TEST_F(BlockingTest, StablePairingHasNone)
{
    Matching m(4);
    m.pair(0, 1); // AB
    m.pair(2, 3); // CD
    EXPECT_EQ(countBlockingPairs(m, disutility, 0.0), 0u);
}

TEST_F(BlockingTest, AlphaFiltersSmallGains)
{
    Matching m(4);
    m.pair(0, 3);
    m.pair(1, 2);
    // B's gain is only 0.02; alpha above that dissolves the pair.
    EXPECT_EQ(countBlockingPairs(m, disutility, 0.02), 1u);
    EXPECT_EQ(countBlockingPairs(m, disutility, 0.03), 0u);
}

TEST_F(BlockingTest, NegativeAlphaFatal)
{
    Matching m(4);
    EXPECT_THROW(countBlockingPairs(m, disutility, -0.1), FatalError);
}

TEST_F(BlockingTest, UnmatchedAgentsNeverBlock)
{
    Matching m(4);
    m.pair(0, 3);
    // 1 and 2 run alone: zero penalty, no incentive to pair.
    EXPECT_EQ(countBlockingPairs(m, disutility, 0.0), 0u);
}

TEST(BlockingStability, PreferenceCheckerAcceptsAndRejects)
{
    PreferenceProfile prefs({{1, 2, 3},
                             {0, 2, 3},
                             {3, 0, 1},
                             {2, 0, 1}},
                            4);
    Matching good(4);
    good.pair(0, 1);
    good.pair(2, 3);
    EXPECT_TRUE(isStableMatching(good, prefs));

    Matching bad(4);
    bad.pair(0, 2);
    bad.pair(1, 3);
    // 0 prefers 1 over 2 and 1 prefers 0 over 3.
    EXPECT_FALSE(isStableMatching(bad, prefs));
}

TEST(BlockingStability, SizeMismatchFatal)
{
    PreferenceProfile prefs({{1}, {0}}, 2);
    Matching m(4);
    EXPECT_THROW(isStableMatching(m, prefs), FatalError);
}

TEST(BlockingStability, EmptyMatchingIsStableForEmptyPrefs)
{
    PreferenceProfile prefs({{}, {}}, 2);
    Matching m(2);
    EXPECT_TRUE(isStableMatching(m, prefs));
}

} // namespace
} // namespace cooper
