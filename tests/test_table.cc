/**
 * @file
 * Unit tests for the table formatter.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hh"
#include "util/table.hh"

namespace cooper {
namespace {

TEST(Table, TextAlignsColumns)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string text = t.toText();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("-----"), std::string::npos);
}

TEST(Table, RejectsWrongWidthRow)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(Table, RejectsEmptyHeader)
{
    EXPECT_THROW(Table({}), FatalError);
}

TEST(Table, CsvEscapesSpecialCharacters)
{
    Table t({"name", "note"});
    t.addRow({"x,y", "say \"hi\""});
    const std::string csv = t.toCsv();
    EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
    EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvRoundTrip)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    t.addRow({"3", "4"});
    EXPECT_EQ(t.toCsv(), "a,b\n1,2\n3,4\n");
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(static_cast<long long>(42)), "42");
}

TEST(Table, CountsRowsAndColumns)
{
    Table t({"a", "b", "c"});
    EXPECT_EQ(t.columns(), 3u);
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"1", "2", "3"});
    EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, WriteCsvCreatesFile)
{
    Table t({"k", "v"});
    t.addRow({"x", "1"});
    const std::string path = "/tmp/cooper_test_table.csv";
    t.writeCsv(path);
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), "k,v\nx,1\n");
    std::remove(path.c_str());
}

TEST(Table, WriteCsvBadPathFatal)
{
    Table t({"k"});
    EXPECT_THROW(t.writeCsv("/nonexistent_dir_xyz/file.csv"), FatalError);
}

} // namespace
} // namespace cooper
