/**
 * @file
 * Unit tests for preference profiles.
 */

#include <gtest/gtest.h>

#include "matching/preferences.hh"
#include "util/error.hh"

namespace cooper {
namespace {

TEST(PreferenceProfile, RanksFollowLists)
{
    PreferenceProfile prefs({{2, 0, 1}, {1, 2, 0}}, 3);
    EXPECT_EQ(prefs.agents(), 2u);
    EXPECT_EQ(prefs.candidates(), 3u);
    EXPECT_EQ(prefs.rankOf(0, 2), 0u);
    EXPECT_EQ(prefs.rankOf(0, 0), 1u);
    EXPECT_EQ(prefs.rankOf(1, 0), 2u);
    EXPECT_TRUE(prefs.prefers(0, 2, 1));
    EXPECT_FALSE(prefs.prefers(0, 1, 2));
}

TEST(PreferenceProfile, DuplicateCandidateFatal)
{
    EXPECT_THROW(PreferenceProfile({{0, 0}}, 2), FatalError);
}

TEST(PreferenceProfile, CandidateOutOfRangeFatal)
{
    EXPECT_THROW(PreferenceProfile({{3}}, 2), FatalError);
}

TEST(PreferenceProfile, PartialListsSupported)
{
    PreferenceProfile prefs({{1}, {}}, 2);
    EXPECT_TRUE(prefs.hasCandidate(0, 1));
    EXPECT_FALSE(prefs.hasCandidate(0, 0));
    EXPECT_FALSE(prefs.hasCandidate(1, 0));
    EXPECT_THROW(prefs.rankOf(1, 0), FatalError);
}

TEST(PreferenceProfile, FromDisutilitySortsAscending)
{
    // Agent 0 dislikes candidate 2 most.
    auto d = [](AgentId a, AgentId b) {
        static const double table[2][3] = {{0.0, 0.1, 0.9},
                                           {0.5, 0.0, 0.2}};
        return table[a][b];
    };
    const auto prefs =
        PreferenceProfile::fromDisutility(2, 3, d, false);
    EXPECT_EQ(prefs.list(0), (std::vector<AgentId>{0, 1, 2}));
    EXPECT_EQ(prefs.list(1), (std::vector<AgentId>{1, 2, 0}));
}

TEST(PreferenceProfile, FromDisutilityExcludesSelf)
{
    auto d = [](AgentId, AgentId b) { return static_cast<double>(b); };
    const auto prefs = PreferenceProfile::fromDisutility(3, 3, d, true);
    for (AgentId i = 0; i < 3; ++i) {
        EXPECT_EQ(prefs.list(i).size(), 2u);
        EXPECT_FALSE(prefs.hasCandidate(i, i));
    }
}

TEST(PreferenceProfile, TieBreaksTowardLowerId)
{
    auto d = [](AgentId, AgentId) { return 1.0; };
    const auto prefs = PreferenceProfile::fromDisutility(1, 4, d, false);
    EXPECT_EQ(prefs.list(0), (std::vector<AgentId>{0, 1, 2, 3}));
}

} // namespace
} // namespace cooper
