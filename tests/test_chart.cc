/**
 * @file
 * Unit tests for ASCII chart rendering.
 */

#include <gtest/gtest.h>

#include "util/chart.hh"
#include "util/error.hh"

namespace cooper {
namespace {

TEST(Chart, BarChartContainsLabelsAndBars)
{
    std::vector<Bar> bars{{"small", 1.0}, {"large", 4.0}};
    const std::string out = renderBarChart("demo", bars, 20);
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("small"), std::string::npos);
    EXPECT_NE(out.find("large"), std::string::npos);
    EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(Chart, BarChartScalesToMax)
{
    std::vector<Bar> bars{{"half", 0.5}, {"full", 1.0}};
    const std::string out = renderBarChart("t", bars, 10);
    // The full bar renders 10 hashes; the half bar 5.
    EXPECT_NE(out.find("##########"), std::string::npos);
    EXPECT_NE(out.find("#####     "), std::string::npos);
}

TEST(Chart, BarChartEmptyInput)
{
    const std::string out = renderBarChart("empty", {}, 10);
    EXPECT_EQ(out, "empty\n");
}

TEST(Chart, BarChartAllZeros)
{
    std::vector<Bar> bars{{"a", 0.0}, {"b", 0.0}};
    const std::string out = renderBarChart("z", bars, 10);
    EXPECT_EQ(out.find('#'), std::string::npos);
}

TEST(Chart, BarChartNegativeRendersEmpty)
{
    std::vector<Bar> bars{{"neg", -1.0}, {"pos", 1.0}};
    const std::string out = renderBarChart("n", bars, 10);
    EXPECT_NE(out.find("pos"), std::string::npos);
}

TEST(Chart, BoxplotsRenderMedianMarker)
{
    std::vector<std::string> labels{"a", "b"};
    std::vector<BoxStats> series{
        {0.0, 1.0, 2.0, 3.0, 4.0},
        {1.0, 2.0, 3.0, 4.0, 5.0},
    };
    const std::string out = renderBoxplots("box", labels, series, 40);
    EXPECT_NE(out.find('M'), std::string::npos);
    EXPECT_NE(out.find('='), std::string::npos);
    EXPECT_NE(out.find('|'), std::string::npos);
}

TEST(Chart, BoxplotsMismatchedInputFatal)
{
    std::vector<std::string> labels{"a"};
    std::vector<BoxStats> series;
    EXPECT_THROW(renderBoxplots("x", labels, series, 20), FatalError);
}

TEST(Chart, BoxplotsDegenerateRange)
{
    std::vector<std::string> labels{"flat"};
    std::vector<BoxStats> series{{1.0, 1.0, 1.0, 1.0, 1.0}};
    const std::string out = renderBoxplots("flat", labels, series, 20);
    EXPECT_NE(out.find("flat"), std::string::npos);
}

} // namespace
} // namespace cooper
