/**
 * @file
 * Tests for phase tracing and the observability session: span
 * nesting, the zero-overhead no-op sink, the exact Chrome-trace JSON
 * emitted by the tracer (golden format), and an end-to-end golden
 * schema check over the trace an instrumented epoch writes through
 * the FrameworkConfig observability knob.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "core/framework.hh"
#include "obs/json.hh"
#include "obs/obs.hh"
#include "sim/interference.hh"
#include "util/rng.hh"
#include "workload/catalog.hh"
#include "workload/population.hh"

namespace cooper {
namespace {

TEST(Tracer, RecordsEventsInCompletionOrder)
{
    Tracer tracer;
    tracer.complete("a", "x", 1.0, 2.0, 1);
    tracer.complete("b", "y", 3.0, 1.5, 2);
    const std::vector<TraceEvent> events = tracer.events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].name, "a");
    EXPECT_EQ(events[0].category, "x");
    EXPECT_DOUBLE_EQ(events[0].tsMicros, 1.0);
    EXPECT_DOUBLE_EQ(events[0].durMicros, 2.0);
    EXPECT_EQ(events[0].depth, 1);
    EXPECT_EQ(events[1].name, "b");
    EXPECT_EQ(events[1].depth, 2);
    // Both events came from this thread: one dense tid.
    EXPECT_EQ(events[0].tid, events[1].tid);
    EXPECT_EQ(events[0].tid, 0);
}

TEST(Tracer, GoldenChromeTraceJson)
{
    Tracer tracer;
    tracer.complete("span \"q\"", "cat", 1.5, 2.25, 1);
    tracer.complete("b", "c", 10.0, 0.125, 2);
    const std::string expected =
        "{\"traceEvents\": [\n"
        "  {\"name\": \"span \\\"q\\\"\", \"cat\": \"cat\", "
        "\"ph\": \"X\", \"ts\": 1.500, \"dur\": 2.250, \"pid\": 1, "
        "\"tid\": 0, \"args\": {\"depth\": 1}},\n"
        "  {\"name\": \"b\", \"cat\": \"c\", \"ph\": \"X\", "
        "\"ts\": 10.000, \"dur\": 0.125, \"pid\": 1, \"tid\": 0, "
        "\"args\": {\"depth\": 2}}\n"
        "], \"displayTimeUnit\": \"ms\"}\n";
    EXPECT_EQ(tracer.toJson(), expected);

    // And the golden string is valid JSON by the in-tree reader.
    const JsonValue root = parseJson(expected);
    ASSERT_TRUE(root.isObject());
    EXPECT_EQ(root.find("traceEvents")->items.size(), 2u);
}

TEST(Tracer, EmptyTraceIsValidJson)
{
    Tracer tracer;
    const JsonValue root = parseJson(tracer.toJson());
    ASSERT_TRUE(root.isObject());
    const JsonValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    EXPECT_TRUE(events->isArray());
    EXPECT_TRUE(events->items.empty());
}

TEST(ObsScope, DisabledConfigInstallsNothing)
{
    ASSERT_EQ(obsMetrics(), nullptr);
    ASSERT_EQ(obsTracer(), nullptr);

    const ObsConfig off;
    const ObsScope scope(off);
    EXPECT_FALSE(scope.active());
    EXPECT_EQ(scope.session(), nullptr);
    EXPECT_EQ(obsMetrics(), nullptr);
    EXPECT_EQ(obsTracer(), nullptr);

    // The RAII helpers are no-ops against the no-op sink.
    {
        const TraceSpan span("untraced");
        const ScopedTimer timer("untimed");
    }
    EXPECT_EQ(obsMetrics(), nullptr);
}

TEST(ObsScope, InstallsAndUninstalls)
{
    ObsConfig on;
    on.metrics = true;
    on.tracing = true;
    {
        const ObsScope scope(on);
        EXPECT_TRUE(scope.active());
        ASSERT_NE(scope.session(), nullptr);
        EXPECT_NE(obsMetrics(), nullptr);
        EXPECT_NE(obsTracer(), nullptr);
    }
    EXPECT_EQ(obsMetrics(), nullptr);
    EXPECT_EQ(obsTracer(), nullptr);
}

TEST(ObsScope, MetricsOnlySessionHasNoTracer)
{
    ObsConfig on;
    on.metrics = true;
    const ObsScope scope(on);
    EXPECT_NE(obsMetrics(), nullptr);
    EXPECT_EQ(obsTracer(), nullptr);
    // Spans are no-ops; timers still record.
    {
        const TraceSpan span("untraced");
        const ScopedTimer timer("phase_seconds");
    }
    const MetricsSnapshot snap = obsMetrics()->snapshot();
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].first, "phase_seconds");
    EXPECT_EQ(snap.histograms[0].second.count, 1u);
    EXPECT_EQ(snap.histograms[0].second.edges,
              MetricsRegistry::defaultLatencyEdges());
}

TEST(ObsScope, OuterScopeWins)
{
    ObsConfig on;
    on.metrics = true;
    on.tracing = true;
    const ObsScope outer(on);
    ASSERT_TRUE(outer.active());
    ObsSession *outer_session = outer.session();
    {
        // The nested scope (a framework under an instrumented CLI, for
        // example) is passive and reports the outer session.
        const ObsScope inner(on);
        EXPECT_FALSE(inner.active());
        EXPECT_EQ(inner.session(), outer_session);
    }
    // The inner scope's destruction left the outer session installed.
    EXPECT_NE(obsMetrics(), nullptr);
    EXPECT_EQ(outer.session(), outer_session);
}

TEST(TraceSpan, RecordsNestingDepthAndContainment)
{
    ObsConfig on;
    on.tracing = true;
    const ObsScope scope(on);
    {
        const TraceSpan outer_span("outer", "test");
        {
            const TraceSpan inner_span("inner", "test");
        }
    }
    const std::vector<TraceEvent> events =
        scope.session()->tracer()->events();
    ASSERT_EQ(events.size(), 2u);
    // Spans complete inside out.
    const TraceEvent &inner = events[0];
    const TraceEvent &outer = events[1];
    EXPECT_EQ(inner.name, "inner");
    EXPECT_EQ(inner.depth, 2);
    EXPECT_EQ(outer.name, "outer");
    EXPECT_EQ(outer.depth, 1);
    // The inner span starts and ends within the outer one.
    EXPECT_GE(inner.tsMicros, outer.tsMicros);
    EXPECT_LE(inner.tsMicros + inner.durMicros,
              outer.tsMicros + outer.durMicros);
}

TEST(TraceSpan, SequentialSpansShareDepthOne)
{
    ObsConfig on;
    on.tracing = true;
    const ObsScope scope(on);
    {
        const TraceSpan a("first");
    }
    {
        const TraceSpan b("second");
    }
    const std::vector<TraceEvent> events =
        scope.session()->tracer()->events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].depth, 1);
    EXPECT_EQ(events[1].depth, 1);
    EXPECT_GE(events[1].tsMicros,
              events[0].tsMicros + events[0].durMicros);
}

/**
 * Golden end-to-end check: an epoch run with the FrameworkConfig
 * observability knob writes a Chrome-trace JSON and a metrics JSON
 * whose schema and span inventory match what the instrumentation
 * promises.
 */
TEST(GoldenTrace, InstrumentedEpochEmitsValidChromeTrace)
{
    const std::string trace_path =
        testing::TempDir() + "cooper_golden_trace.json";
    const std::string metrics_path =
        testing::TempDir() + "cooper_golden_metrics.json";

    const Catalog catalog = Catalog::paperTableI();
    const InterferenceModel model(catalog);
    FrameworkConfig config;
    config.execution.threads = 2;
    config.execution.obs.traceOut = trace_path;
    config.execution.obs.metricsOut = metrics_path;

    CooperFramework framework(catalog, model, config, 3);
    Rng rng(17);
    const std::vector<JobTypeId> population =
        samplePopulation(catalog, 24, MixKind::Uniform, rng);
    framework.runEpoch(population);
    // runEpoch's ObsScope closed: the outputs are on disk and the
    // process-wide sink is back to no-op.
    ASSERT_EQ(obsMetrics(), nullptr);

    const JsonValue trace = parseJsonFile(trace_path);
    ASSERT_TRUE(trace.isObject());
    const JsonValue *events = trace.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_FALSE(events->items.empty());

    std::set<std::string> names;
    for (const JsonValue &event : events->items) {
        ASSERT_TRUE(event.isObject());
        const JsonValue *name = event.find("name");
        ASSERT_NE(name, nullptr);
        ASSERT_TRUE(name->isString());
        EXPECT_FALSE(name->text.empty());
        EXPECT_TRUE(event.find("cat")->isString());
        EXPECT_EQ(event.find("ph")->text, "X");
        EXPECT_GE(event.find("ts")->number, 0.0);
        EXPECT_GE(event.find("dur")->number, 0.0);
        EXPECT_DOUBLE_EQ(event.find("pid")->number, 1.0);
        ASSERT_NE(event.find("tid"), nullptr);
        const JsonValue *args = event.find("args");
        ASSERT_NE(args, nullptr);
        EXPECT_GE(args->find("depth")->number, 1.0);
        names.insert(name->text);
    }
    // Every instrumented phase inside an epoch shows up.
    for (const char *expected :
         {"framework.epoch", "framework.build_instance",
          "coordinator.profile", "profiler.sample_profiles",
          "cf.predict", "coordinator.match", "coordinator.dispatch"})
        EXPECT_EQ(names.count(expected), 1u)
            << "missing span " << expected;

    const JsonValue metrics = parseJsonFile(metrics_path);
    ASSERT_TRUE(metrics.isObject());
    const JsonValue *counters = metrics.find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_GT(counters->find("profiler.samples")->number, 0.0);
    EXPECT_GT(counters->find("cf.predicted_cells")->number, 0.0);
    EXPECT_GT(counters->find("matching.proposals")->number, 0.0);
    EXPECT_DOUBLE_EQ(
        metrics.find("gauges")->find("framework.agents")->number,
        24.0);
    const JsonValue *epoch_seconds =
        metrics.find("histograms")->find("framework.epoch_seconds");
    ASSERT_NE(epoch_seconds, nullptr);
    EXPECT_DOUBLE_EQ(epoch_seconds->find("count")->number, 1.0);

    std::remove(trace_path.c_str());
    std::remove(metrics_path.c_str());
}

} // namespace
} // namespace cooper
