/**
 * @file
 * Unit tests for the Table I job catalog.
 */

#include <gtest/gtest.h>

#include "util/error.hh"
#include "workload/catalog.hh"

namespace cooper {
namespace {

TEST(Catalog, HasTwentyJobs)
{
    const Catalog catalog = Catalog::paperTableI();
    EXPECT_EQ(catalog.size(), 20u);
}

TEST(Catalog, TableIBandwidthsVerbatim)
{
    const Catalog catalog = Catalog::paperTableI();
    // Spot-check the values published in Table I.
    EXPECT_DOUBLE_EQ(catalog.jobByName("correlation").gbps, 25.05);
    EXPECT_DOUBLE_EQ(catalog.jobByName("decision").gbps, 21.03);
    EXPECT_DOUBLE_EQ(catalog.jobByName("fpgrowth").gbps, 10.06);
    EXPECT_DOUBLE_EQ(catalog.jobByName("kmeans").gbps, 0.32);
    EXPECT_DOUBLE_EQ(catalog.jobByName("swaptions").gbps, 0.07);
    EXPECT_DOUBLE_EQ(catalog.jobByName("vips").gbps, 0.05);
    EXPECT_DOUBLE_EQ(catalog.jobByName("streamc").gbps, 18.53);
    EXPECT_DOUBLE_EQ(catalog.jobByName("dedup").gbps, 0.93);
    EXPECT_DOUBLE_EQ(catalog.jobByName("x264").gbps, 4.00);
}

TEST(Catalog, SuiteSplitMatchesPaper)
{
    const Catalog catalog = Catalog::paperTableI();
    std::size_t spark = 0, parsec = 0;
    for (const auto &job : catalog.jobs())
        (job.suite == Suite::Spark ? spark : parsec) += 1;
    EXPECT_EQ(spark, 9u);
    EXPECT_EQ(parsec, 11u);
}

TEST(Catalog, IdsAreDense)
{
    const Catalog catalog = Catalog::paperTableI();
    for (JobTypeId i = 0; i < catalog.size(); ++i)
        EXPECT_EQ(catalog.job(i).id, i);
}

TEST(Catalog, LookupByBadNameFatal)
{
    const Catalog catalog = Catalog::paperTableI();
    EXPECT_THROW(catalog.jobByName("no-such-job"), FatalError);
}

TEST(Catalog, LookupByBadIdFatal)
{
    const Catalog catalog = Catalog::paperTableI();
    EXPECT_THROW(catalog.job(1000), FatalError);
}

TEST(Catalog, BandwidthOrderingIsSorted)
{
    const Catalog catalog = Catalog::paperTableI();
    const auto order = catalog.idsByBandwidth();
    EXPECT_EQ(order.size(), catalog.size());
    for (std::size_t i = 1; i < order.size(); ++i)
        EXPECT_LE(catalog.job(order[i - 1]).gbps,
                  catalog.job(order[i]).gbps);
    // Least and most contentious match Table I.
    EXPECT_EQ(catalog.job(order.front()).name, "vips");
    EXPECT_EQ(catalog.job(order.back()).name, "correlation");
}

TEST(Catalog, FigureJobsExistAndAreOrdered)
{
    const Catalog catalog = Catalog::paperTableI();
    const auto names = Catalog::figureJobNames();
    EXPECT_EQ(names.size(), 11u);
    double last = -1.0;
    for (const auto &name : names) {
        const JobType &job = catalog.jobByName(name);
        EXPECT_GT(job.gbps, last) << name;
        last = job.gbps;
    }
}

TEST(Catalog, SensitivitiesInUnitRange)
{
    const Catalog catalog = Catalog::paperTableI();
    for (const auto &job : catalog.jobs()) {
        EXPECT_GE(job.bwSensitivity, 0.0) << job.name;
        EXPECT_LE(job.bwSensitivity, 1.0) << job.name;
        EXPECT_GE(job.cacheSensitivity, 0.0) << job.name;
        EXPECT_LE(job.cacheSensitivity, 1.0) << job.name;
        EXPECT_GT(job.standaloneSec, 0.0) << job.name;
        EXPECT_GT(job.cacheMB, 0.0) << job.name;
    }
}

TEST(Catalog, DedupIsCacheSensitiveOutlier)
{
    // The paper's headline unfairness example: dedup demands little
    // bandwidth yet suffers heavily under greedy colocation, which our
    // calibration encodes as high cache sensitivity.
    const Catalog catalog = Catalog::paperTableI();
    const JobType &dedup = catalog.jobByName("dedup");
    EXPECT_LT(dedup.gbps, 1.0);
    for (const auto &job : catalog.jobs())
        EXPECT_LE(job.cacheSensitivity, dedup.cacheSensitivity)
            << job.name;
}

TEST(Catalog, RejectsMisnumberedJobs)
{
    std::vector<JobType> jobs(1);
    jobs[0].id = 5;
    jobs[0].name = "bad";
    EXPECT_THROW(Catalog{std::move(jobs)}, FatalError);
}

TEST(Catalog, SuiteNames)
{
    EXPECT_EQ(suiteName(Suite::Spark), "Spark");
    EXPECT_EQ(suiteName(Suite::Parsec), "PARSEC");
}

} // namespace
} // namespace cooper
