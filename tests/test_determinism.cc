/**
 * @file
 * Property-style tests that the parallel kernels are bit-identical
 * across thread counts: same seed in, same bits out, whether the work
 * runs serially or on eight threads. This is the contract that makes
 * the `threads` knob safe to flip in production — it can change
 * wall-clock time, never results.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cf/item_knn.hh"
#include "cf/sparse_matrix.hh"
#include "cf/subsample.hh"
#include "core/experiment.hh"
#include "core/policies.hh"
#include "game/shapley.hh"
#include "matching/blocking.hh"
#include "matching/matching.hh"
#include "obs/obs.hh"
#include "sim/interference.hh"
#include "util/rng.hh"
#include "workload/catalog.hh"

namespace cooper {
namespace {

const std::vector<std::size_t> kThreadCounts{1, 2, 8};

/** Bitwise double equality (0.0 vs -0.0 and NaN patterns included). */
bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

TEST(Determinism, ShapleySampledIdenticalAcrossThreadCounts)
{
    const std::size_t n = 16;
    std::vector<double> interference(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        interference[i] = 0.5 + 0.25 * static_cast<double>(i);
    const auto v = interferenceGame(interference);

    std::vector<std::vector<double>> results;
    for (std::size_t threads : kThreadCounts) {
        Rng rng(2024);
        results.push_back(shapleySampled(n, v, 500, rng, threads));
    }
    for (std::size_t t = 1; t < results.size(); ++t) {
        ASSERT_EQ(results[t].size(), results[0].size());
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_TRUE(sameBits(results[0][i], results[t][i]))
                << "agent " << i << " at threads "
                << kThreadCounts[t];
    }
}

TEST(Determinism, ShapleySampledRepeatedCallsAdvanceTheStream)
{
    const auto v = interferenceGame({1.0, 2.0, 3.0, 4.0});
    Rng rng(7);
    const auto first = shapleySampled(4, v, 50, rng, 2);
    const auto second = shapleySampled(4, v, 50, rng, 2);
    // The caller's stream advances between calls, so back-to-back
    // estimates differ (they are independent Monte-Carlo runs).
    EXPECT_NE(first, second);
}

TEST(Determinism, ItemKnnPredictionIdenticalAcrossThreadCounts)
{
    // Random sparse penalty matrices of a few shapes and densities.
    for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
        Rng rng(seed);
        const std::size_t n = 12 + rng.uniformInt(std::uint64_t(8));
        SparseMatrix full(n, n);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j)
                full.set(i, j, rng.uniform() * 0.3);
        const SparseMatrix sparse =
            subsampleSymmetric(full, 0.3, 2, rng);

        std::vector<Prediction> predictions;
        for (std::size_t threads : kThreadCounts) {
            ItemKnnConfig config;
            config.threads = threads;
            predictions.push_back(
                ItemKnnPredictor(config).predict(sparse));
        }
        for (std::size_t t = 1; t < predictions.size(); ++t) {
            EXPECT_EQ(predictions[t].fallbackCells,
                      predictions[0].fallbackCells);
            ASSERT_EQ(predictions[t].dense.size(), n);
            for (std::size_t r = 0; r < n; ++r)
                for (std::size_t c = 0; c < n; ++c)
                    EXPECT_TRUE(sameBits(predictions[0].dense[r][c],
                                         predictions[t].dense[r][c]))
                        << "seed " << seed << " cell (" << r << ", "
                        << c << ") at threads " << kThreadCounts[t];
        }
    }
}

TEST(Determinism, ItemKnnSimilarityIdenticalAcrossThreadCounts)
{
    Rng rng(99);
    const std::size_t n = 15;
    SparseMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            if (rng.bernoulli(0.6))
                m.set(i, j, rng.uniform());

    ItemKnnConfig serial;
    serial.threads = 1;
    const auto base = ItemKnnPredictor(serial).similarityMatrix(m);
    for (std::size_t threads : {std::size_t(2), std::size_t(8)}) {
        ItemKnnConfig parallel_config;
        parallel_config.threads = threads;
        const auto sim =
            ItemKnnPredictor(parallel_config).similarityMatrix(m);
        for (std::size_t a = 0; a < n; ++a)
            for (std::size_t b = 0; b < n; ++b)
                EXPECT_TRUE(sameBits(base[a][b], sim[a][b]))
                    << "(" << a << ", " << b << ") at threads "
                    << threads;
    }
}

TEST(Determinism, BlockingPairsIdenticalAcrossThreadCounts)
{
    // Random instances: penalties from a seeded generator, agents
    // paired off in arrival order.
    for (const std::uint64_t seed : {5ULL, 6ULL}) {
        Rng rng(seed);
        const std::size_t n = 60;
        std::vector<std::vector<double>> penalty(
            n, std::vector<double>(n, 0.0));
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j)
                penalty[i][j] = rng.uniform() * 0.3;
        const DisutilityFn d = [&](AgentId a, AgentId b) {
            return penalty[a][b];
        };
        Matching m(n);
        const auto order = rng.permutation(n);
        for (std::size_t k = 0; k + 1 < n; k += 2)
            m.pair(order[k], order[k + 1]);

        const auto base = findBlockingPairs(m, d, 0.01, 1);
        for (std::size_t threads : {std::size_t(2), std::size_t(8)}) {
            const auto pairs = findBlockingPairs(m, d, 0.01, threads);
            ASSERT_EQ(pairs.size(), base.size())
                << "seed " << seed << " threads " << threads;
            for (std::size_t k = 0; k < pairs.size(); ++k) {
                EXPECT_EQ(pairs[k].a, base[k].a);
                EXPECT_EQ(pairs[k].b, base[k].b);
                EXPECT_TRUE(sameBits(pairs[k].gainA, base[k].gainA));
                EXPECT_TRUE(sameBits(pairs[k].gainB, base[k].gainB));
            }
            EXPECT_EQ(countBlockingPairs(m, d, 0.01, threads),
                      base.size());
        }
    }
}

TEST(Determinism, ReplicationsIdenticalAcrossThreadCounts)
{
    const Catalog catalog = Catalog::paperTableI();
    const InterferenceModel model(catalog);
    const auto policy = makePolicy("GR");
    const Rng root(31);

    ReplicationPlan plan;
    plan.replications = 6;
    plan.agents = 40;

    std::vector<std::vector<PolicyRun>> batches;
    for (std::size_t threads : kThreadCounts) {
        plan.threads = threads;
        batches.push_back(
            runReplications(*policy, catalog, model, plan, root));
    }
    for (std::size_t t = 1; t < batches.size(); ++t) {
        ASSERT_EQ(batches[t].size(), batches[0].size());
        for (std::size_t r = 0; r < plan.replications; ++r) {
            const PolicyRun &a = batches[0][r];
            const PolicyRun &b = batches[t][r];
            EXPECT_TRUE(sameBits(a.meanPenalty, b.meanPenalty))
                << "replication " << r << " threads "
                << kThreadCounts[t];
            ASSERT_EQ(a.penalties.size(), b.penalties.size());
            for (std::size_t i = 0; i < a.penalties.size(); ++i)
                EXPECT_TRUE(sameBits(a.penalties[i], b.penalties[i]));
            ASSERT_EQ(a.matching.size(), b.matching.size());
            for (AgentId i = 0; i < a.matching.size(); ++i)
                EXPECT_EQ(a.matching.partnerOf(i),
                          b.matching.partnerOf(i));
        }
    }
}

TEST(Determinism, ReplicationsIndependentOfBatchSize)
{
    // Replication r is a pure function of (root, r): growing the
    // batch must not change earlier replications.
    const Catalog catalog = Catalog::paperTableI();
    const InterferenceModel model(catalog);
    const auto policy = makePolicy("GR");
    const Rng root(77);

    ReplicationPlan small;
    small.replications = 3;
    small.agents = 30;
    ReplicationPlan large = small;
    large.replications = 8;
    large.threads = 8;

    const auto few =
        runReplications(*policy, catalog, model, small, root);
    const auto many =
        runReplications(*policy, catalog, model, large, root);
    for (std::size_t r = 0; r < small.replications; ++r)
        EXPECT_TRUE(
            sameBits(few[r].meanPenalty, many[r].meanPenalty))
            << "replication " << r;
}

TEST(Determinism, ObservabilityDoesNotPerturbResults)
{
    // The observability layer reads clocks and bumps counters but must
    // never touch an RNG stream or a floating-point value that flows
    // into an output: the same replications with collectors on are
    // bit-identical to runs with the no-op sink, at every thread
    // count.
    const Catalog catalog = Catalog::paperTableI();
    const InterferenceModel model(catalog);
    const auto policy = makePolicy("SMR");
    const Rng root(41);

    ReplicationPlan plan;
    plan.replications = 3;
    plan.agents = 24;
    plan.oracular = false;
    plan.sampleRatio = 0.4;

    for (std::size_t threads : kThreadCounts) {
        plan.threads = threads;
        const auto quiet =
            runReplications(*policy, catalog, model, plan, root);

        ObsConfig obs;
        obs.metrics = true;
        obs.tracing = true;
        const ObsScope scope(obs);
        ASSERT_TRUE(scope.active());
        const auto observed =
            runReplications(*policy, catalog, model, plan, root);

        // The collectors saw traffic...
        EXPECT_GT(
            scope.session()->metrics()->snapshot().counters.size(),
            0u);
        // ...and the results did not move by a single bit.
        ASSERT_EQ(observed.size(), quiet.size());
        for (std::size_t r = 0; r < plan.replications; ++r) {
            EXPECT_TRUE(sameBits(quiet[r].meanPenalty,
                                 observed[r].meanPenalty))
                << "replication " << r << " threads " << threads;
            ASSERT_EQ(quiet[r].penalties.size(),
                      observed[r].penalties.size());
            for (std::size_t i = 0; i < quiet[r].penalties.size(); ++i)
                EXPECT_TRUE(sameBits(quiet[r].penalties[i],
                                     observed[r].penalties[i]));
            ASSERT_EQ(quiet[r].matching.size(),
                      observed[r].matching.size());
            for (AgentId i = 0; i < quiet[r].matching.size(); ++i)
                EXPECT_EQ(quiet[r].matching.partnerOf(i),
                          observed[r].matching.partnerOf(i));
        }
    }
}

TEST(Determinism, CfReplicationsIdenticalAcrossThreadCounts)
{
    // The collaborative-filtering path adds the profiler and predictor
    // to the replication pipeline; it must be just as rigid.
    const Catalog catalog = Catalog::paperTableI();
    const InterferenceModel model(catalog);
    const auto policy = makePolicy("SMR");
    const Rng root(13);

    ReplicationPlan plan;
    plan.replications = 3;
    plan.agents = 24;
    plan.oracular = false;
    plan.sampleRatio = 0.4;

    plan.threads = 1;
    const auto serial =
        runReplications(*policy, catalog, model, plan, root);
    plan.threads = 8;
    const auto parallel_runs =
        runReplications(*policy, catalog, model, plan, root);
    for (std::size_t r = 0; r < plan.replications; ++r)
        EXPECT_TRUE(sameBits(serial[r].meanPenalty,
                             parallel_runs[r].meanPenalty))
            << "replication " << r;
}

} // namespace
} // namespace cooper
