/**
 * @file
 * Unit tests for the shared experiment plumbing.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "stats/correlation.hh"
#include "util/error.hh"

namespace cooper {
namespace {

class ExperimentTest : public ::testing::Test
{
  protected:
    Catalog catalog_ = Catalog::paperTableI();
    InterferenceModel model_{catalog_};
};

TEST_F(ExperimentTest, SampleInstanceIsOracular)
{
    Rng rng(1);
    const auto instance =
        sampleInstance(catalog_, model_, 30, MixKind::Uniform, rng);
    EXPECT_EQ(instance.agents(), 30u);
    for (JobTypeId i = 0; i < catalog_.size(); ++i)
        for (JobTypeId j = 0; j < catalog_.size(); ++j)
            EXPECT_DOUBLE_EQ(instance.believed()(i, j),
                             instance.truth()(i, j));
}

TEST_F(ExperimentTest, SampleInstanceCfBelievedDiffersButCorrelates)
{
    Rng rng(2);
    const auto instance = sampleInstanceCf(catalog_, model_, 30,
                                           MixKind::Uniform, 0.25, rng);
    EXPECT_EQ(instance.agents(), 30u);

    // Believed is a prediction: not identical to the truth, but
    // strongly ordered like it.
    std::vector<double> truth, believed;
    bool any_diff = false;
    for (JobTypeId i = 0; i < catalog_.size(); ++i) {
        for (JobTypeId j = 0; j < catalog_.size(); ++j) {
            truth.push_back(instance.truth()(i, j));
            believed.push_back(instance.believed()(i, j));
            if (std::abs(truth.back() - believed.back()) > 1e-9)
                any_diff = true;
        }
    }
    EXPECT_TRUE(any_diff);
    EXPECT_GT(spearman(truth, believed), 0.8);
}

TEST_F(ExperimentTest, RunPolicyCollectsPenalties)
{
    Rng rng(3);
    const auto instance =
        sampleInstance(catalog_, model_, 40, MixKind::Uniform, rng);
    GreedyPolicy gr;
    Rng policy_rng(4);
    const PolicyRun run = runPolicy(gr, instance, policy_rng);
    EXPECT_EQ(run.policy, "GR");
    EXPECT_EQ(run.penalties.size(), 40u);
    double acc = 0.0;
    std::size_t matched = 0;
    for (AgentId a = 0; a < 40; ++a) {
        if (run.matching.isMatched(a)) {
            acc += run.penalties[a];
            ++matched;
        }
    }
    EXPECT_NEAR(run.meanPenalty, acc / matched, 1e-12);
}

TEST_F(ExperimentTest, AggregateByTypeOrdersByDemand)
{
    Rng rng(5);
    const auto instance =
        sampleInstance(catalog_, model_, 200, MixKind::Uniform, rng);
    Rng policy_rng(6);
    const PolicyRun run =
        runPolicy(StableMarriageRandomPolicy(), instance, policy_rng);
    const auto rows = aggregateByType(instance, run.matching);
    EXPECT_GT(rows.size(), 10u);
    for (std::size_t k = 1; k < rows.size(); ++k)
        EXPECT_LE(rows[k - 1].gbps, rows[k].gbps);
    std::size_t covered = 0;
    for (const auto &row : rows)
        covered += row.count;
    EXPECT_EQ(covered, 200u);
}

TEST_F(ExperimentTest, FigureJobRowsFollowPaperOrder)
{
    Rng rng(7);
    const auto instance =
        sampleInstance(catalog_, model_, 400, MixKind::Uniform, rng);
    Rng policy_rng(8);
    const PolicyRun run =
        runPolicy(GreedyPolicy(), instance, policy_rng);
    const auto rows = figureJobRows(
        catalog_, aggregateByType(instance, run.matching));
    const auto names = Catalog::figureJobNames();
    ASSERT_EQ(rows.size(), names.size());
    for (std::size_t k = 0; k < rows.size(); ++k)
        EXPECT_EQ(catalog_.job(rows[k].type).name, names[k]);
}

TEST_F(ExperimentTest, FigureJobRowsSkipAbsentTypes)
{
    // A population containing only swaptions and correlation yields
    // exactly those two figure rows.
    std::vector<JobTypeId> types;
    for (int i = 0; i < 4; ++i) {
        types.push_back(catalog_.jobByName("swaptions").id);
        types.push_back(catalog_.jobByName("correlation").id);
    }
    auto instance =
        ColocationInstance::oracular(catalog_, types, model_);
    Rng rng(9);
    const PolicyRun run =
        runPolicy(ComplementaryPolicy(), instance, rng);
    const auto rows = figureJobRows(
        catalog_, aggregateByType(instance, run.matching));
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(catalog_.job(rows[0].type).name, "swaptions");
    EXPECT_EQ(catalog_.job(rows[1].type).name, "correlation");
}

} // namespace
} // namespace cooper
