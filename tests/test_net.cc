/**
 * @file
 * Service-plane tests: the frame codec survives hostile and truncated
 * input (bad magic, wrong version, oversized declared lengths,
 * interleaved partial reads), the ServicePlane reorders
 * multi-connection streams back into the canonical churn order and
 * reproduces the in-process replay byte for byte at every thread and
 * shard count, protocol violations poison the plane instead of the
 * process, and the epoll server survives mid-message disconnects and
 * garbage-spewing strangers on real loopback sockets.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "net/frame.hh"
#include "net/service_plane.hh"
#include "online/churn.hh"
#include "online/driver.hh"
#include "online/events.hh"
#include "shard/sharded_driver.hh"
#include "sim/interference.hh"
#include "util/error.hh"
#include "workload/catalog.hh"

#ifdef __linux__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <thread>

#include "net/client.hh"
#include "net/server.hh"
#endif

namespace cooper {
namespace {

struct Fixture
{
    Catalog catalog = Catalog::paperTableI();
    InterferenceModel model{catalog};
};

ChurnTrace
makeTrace(const Catalog &catalog, std::size_t arrivals,
          std::uint64_t seed, double mean_gap = 6.0,
          double mean_life = 400.0)
{
    ChurnConfig churn;
    churn.arrivals = arrivals;
    churn.initialJobs = 12;
    churn.meanInterarrivalTicks = mean_gap;
    churn.meanLifetimeTicks = mean_life;
    Rng rng(seed);
    return generateChurnTrace(catalog, churn, rng);
}

std::string
summaryOf(const OnlineReport &report)
{
    std::ostringstream out;
    writeOnlineSummary(out, report);
    return out.str();
}

std::string
summaryOf(const ShardedReport &report)
{
    std::ostringstream out;
    writeShardedSummary(out, report);
    return out.str();
}

/** The trace as wire messages, seq = canonical index. */
std::vector<net::EventMsg>
wireEventsOf(const ChurnTrace &trace)
{
    std::vector<net::EventMsg> out;
    out.reserve(trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const ChurnEvent &event = trace.events()[i];
        net::EventMsg msg;
        msg.seq = i;
        msg.tick = event.tick;
        msg.kind = event.kind == EventKind::Arrival ? 0 : 1;
        msg.uid = event.uid;
        msg.type = static_cast<std::uint32_t>(event.type);
        out.push_back(msg);
    }
    return out;
}

std::vector<std::uint8_t>
frameOf(net::MsgType type, const std::vector<std::uint8_t> &payload,
        std::uint16_t flags = 0)
{
    std::vector<std::uint8_t> out;
    net::encodeFrame(out, type, flags, payload.data(), payload.size());
    return out;
}

// ---------------------------------------------------------------------
// Frame codec: hostile and truncated input.

TEST(Frame, RoundTripsAnEventMessage)
{
    net::EventMsg msg;
    msg.seq = 41;
    msg.tick = 1234;
    msg.kind = 1;
    msg.uid = 99;
    msg.type = 7;

    std::vector<std::uint8_t> payload;
    msg.encode(payload);
    const std::vector<std::uint8_t> bytes =
        frameOf(net::MsgType::Event, payload);

    net::FrameView frame;
    std::size_t consumed = 0;
    std::string error;
    ASSERT_EQ(net::tryDecodeFrame(bytes.data(), bytes.size(), frame,
                                  consumed, error),
              net::DecodeStatus::Ok);
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(frame.type, net::MsgType::Event);

    const net::EventMsg back = net::EventMsg::decode(frame);
    EXPECT_EQ(back.seq, msg.seq);
    EXPECT_EQ(back.tick, msg.tick);
    EXPECT_EQ(back.kind, msg.kind);
    EXPECT_EQ(back.uid, msg.uid);
    EXPECT_EQ(back.type, msg.type);
}

TEST(Frame, TruncatedLengthPrefixNeedsMoreBytes)
{
    // Every strict prefix of the 12-byte header — including the torn
    // length field — must park the decoder, never advance it.
    net::AckMsg msg{7, 1};
    std::vector<std::uint8_t> payload;
    msg.encode(payload);
    const std::vector<std::uint8_t> bytes =
        frameOf(net::MsgType::Ack, payload);

    for (std::size_t len = 0; len < net::kHeaderSize; ++len) {
        net::FrameView frame;
        std::size_t consumed = 0;
        std::string error;
        EXPECT_EQ(net::tryDecodeFrame(bytes.data(), len, frame,
                                      consumed, error),
                  net::DecodeStatus::NeedMore)
            << "prefix length " << len;
    }
}

TEST(Frame, TruncatedPayloadNeedsMoreBytes)
{
    // A mid-message disconnect leaves header + partial payload in the
    // buffer; the decoder must wait, and the connection's EOF — not a
    // wild read — is what kills it.
    net::FinishedMsg msg{250};
    std::vector<std::uint8_t> payload;
    msg.encode(payload);
    const std::vector<std::uint8_t> bytes =
        frameOf(net::MsgType::Finished, payload);

    for (std::size_t len = net::kHeaderSize; len < bytes.size();
         ++len) {
        net::FrameView frame;
        std::size_t consumed = 0;
        std::string error;
        EXPECT_EQ(net::tryDecodeFrame(bytes.data(), len, frame,
                                      consumed, error),
                  net::DecodeStatus::NeedMore)
            << "prefix length " << len;
    }
}

TEST(Frame, OversizedDeclaredLengthIsRejected)
{
    std::vector<std::uint8_t> header(net::kHeaderSize, 0);
    const std::uint32_t magic = net::kMagic;
    std::memcpy(header.data(), &magic, 4);
    header[4] = net::kProtocolVersion;
    header[5] = static_cast<std::uint8_t>(net::MsgType::Event);
    const std::uint32_t length = net::kMaxFramePayload + 1;
    std::memcpy(header.data() + 8, &length, 4);

    net::FrameView frame;
    std::size_t consumed = 0;
    std::string error;
    EXPECT_EQ(net::tryDecodeFrame(header.data(), header.size(), frame,
                                  consumed, error),
              net::DecodeStatus::Bad);
    EXPECT_NE(error.find("payload"), std::string::npos);
}

TEST(Frame, BadMagicAndVersionAndTypeAreRejected)
{
    net::AckMsg msg{1, 1};
    std::vector<std::uint8_t> payload;
    msg.encode(payload);
    const std::vector<std::uint8_t> good =
        frameOf(net::MsgType::Ack, payload);

    const auto expectBad = [&](std::vector<std::uint8_t> bytes) {
        net::FrameView frame;
        std::size_t consumed = 0;
        std::string error;
        EXPECT_EQ(net::tryDecodeFrame(bytes.data(), bytes.size(),
                                      frame, consumed, error),
                  net::DecodeStatus::Bad);
        EXPECT_FALSE(error.empty());
    };

    std::vector<std::uint8_t> magic = good;
    magic[0] ^= 0xFF;
    expectBad(magic);

    std::vector<std::uint8_t> version = good;
    version[4] = net::kProtocolVersion + 1;
    expectBad(version);

    std::vector<std::uint8_t> type = good;
    type[5] = 200;
    expectBad(type);
}

TEST(Frame, InterleavedPartialReadsDecodeAtEachBoundary)
{
    // Three frames dribbled in byte by byte, the way partial reads
    // land across server ticks: the decoder must yield each frame
    // exactly when its last byte arrives and never early.
    std::vector<std::vector<std::uint8_t>> frames;
    {
        std::vector<std::uint8_t> payload;
        net::HelloMsg{3, net::kProtocolVersion, 0}.encode(payload);
        frames.push_back(frameOf(net::MsgType::Hello, payload));
    }
    {
        std::vector<std::uint8_t> payload;
        net::EventMsg{0, 5, 0, 11, 2}.encode(payload);
        frames.push_back(frameOf(net::MsgType::Event, payload));
    }
    {
        std::vector<std::uint8_t> payload;
        net::FinishedMsg{1}.encode(payload);
        frames.push_back(frameOf(net::MsgType::Finished, payload));
    }

    std::vector<std::uint8_t> stream;
    std::vector<std::size_t> boundaries;
    for (const auto &f : frames) {
        stream.insert(stream.end(), f.begin(), f.end());
        boundaries.push_back(stream.size());
    }

    std::vector<std::uint8_t> buffer;
    std::size_t decoded = 0;
    for (std::size_t i = 0; i < stream.size(); ++i) {
        buffer.push_back(stream[i]);
        net::FrameView frame;
        std::size_t consumed = 0;
        std::string error;
        const net::DecodeStatus status = net::tryDecodeFrame(
            buffer.data(), buffer.size(), frame, consumed, error);
        if (i + 1 == boundaries[decoded]) {
            ASSERT_EQ(status, net::DecodeStatus::Ok) << "byte " << i;
            EXPECT_EQ(consumed, buffer.size());
            buffer.clear();
            ++decoded;
        } else {
            ASSERT_EQ(status, net::DecodeStatus::NeedMore)
                << "byte " << i;
        }
    }
    EXPECT_EQ(decoded, frames.size());
}

TEST(Frame, PayloadDecodeRejectsShortLyingAndTrailingBytes)
{
    std::vector<std::uint8_t> payload;
    net::EventMsg{1, 2, 0, 3, 4}.encode(payload);

    // Short payload: the reader must refuse to run off the end.
    {
        net::FrameView frame;
        frame.type = net::MsgType::Event;
        frame.payload = payload.data();
        frame.size = payload.size() - 1;
        EXPECT_THROW(net::EventMsg::decode(frame), FatalError);
    }
    // Trailing garbage: a payload longer than the message is hostile.
    {
        std::vector<std::uint8_t> padded = payload;
        padded.push_back(0);
        net::FrameView frame;
        frame.type = net::MsgType::Event;
        frame.payload = padded.data();
        frame.size = padded.size();
        EXPECT_THROW(net::EventMsg::decode(frame), FatalError);
    }
    // An event kind the protocol does not define.
    {
        std::vector<std::uint8_t> bad;
        net::EventMsg{1, 2, 0, 3, 4}.encode(bad);
        bad[16] = 2; // kind byte follows seq and tick
        net::FrameView frame;
        frame.type = net::MsgType::Event;
        frame.payload = bad.data();
        frame.size = bad.size();
        EXPECT_THROW(net::EventMsg::decode(frame), FatalError);
    }
    // An assignment whose declared pair count exceeds the payload.
    {
        std::vector<std::uint8_t> bad;
        net::AssignmentMsg assignment;
        assignment.epoch = 1;
        assignment.pairs = {{1, 2}};
        assignment.encode(bad);
        bad[8] = 200; // count lies about the pairs that follow
        net::FrameView frame;
        frame.type = net::MsgType::Assignment;
        frame.payload = bad.data();
        frame.size = bad.size();
        EXPECT_THROW(net::AssignmentMsg::decode(frame), FatalError);
    }
    // A Hello from a peer speaking a different protocol version.
    {
        std::vector<std::uint8_t> bad;
        net::HelloMsg{0, net::kProtocolVersion + 9, 0}.encode(bad);
        net::FrameView frame;
        frame.type = net::MsgType::Hello;
        frame.payload = bad.data();
        frame.size = bad.size();
        EXPECT_THROW(net::HelloMsg::decode(frame), FatalError);
    }
}

TEST(Frame, BusyRoundTripsAndCarriesTheRetryHint)
{
    net::BusyMsg msg;
    msg.seq = 777;
    msg.retryAfterMs = 5;

    std::vector<std::uint8_t> payload;
    msg.encode(payload);
    const std::vector<std::uint8_t> bytes =
        frameOf(net::MsgType::Busy, payload);

    net::FrameView frame;
    std::size_t consumed = 0;
    std::string error;
    ASSERT_EQ(net::tryDecodeFrame(bytes.data(), bytes.size(), frame,
                                  consumed, error),
              net::DecodeStatus::Ok);
    EXPECT_EQ(frame.type, net::MsgType::Busy);

    const net::BusyMsg back = net::BusyMsg::decode(frame);
    EXPECT_EQ(back.seq, msg.seq);
    EXPECT_EQ(back.retryAfterMs, msg.retryAfterMs);
}

TEST(Frame, HelloCarriesTheRunId)
{
    std::vector<std::uint8_t> payload;
    net::HelloMsg{9, net::kProtocolVersion, 0, 42}.encode(payload);
    net::FrameView frame;
    frame.type = net::MsgType::Hello;
    frame.payload = payload.data();
    frame.size = payload.size();
    const net::HelloMsg back = net::HelloMsg::decode(frame);
    EXPECT_EQ(back.clientId, 9u);
    EXPECT_EQ(back.runId, 42u);
}

// ---------------------------------------------------------------------
// ServicePlane: byte-identity with the in-process replay.

TEST(ServicePlane, ServedReplayMatchesRunByteForByteAtEveryThreadCount)
{
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 200, 2);
    const std::vector<net::EventMsg> events = wireEventsOf(trace);

    for (const std::size_t threads : {1u, 2u, 8u}) {
        FrameworkConfig config;
        config.execution.threads = threads;

        OnlineDriver reference(fx.catalog, fx.model, config, 17);
        const std::string expected = summaryOf(reference.run(trace));

        OnlineDriver served(fx.catalog, fx.model, config, 17);
        net::ServicePlane plane(fx.catalog, served);
        std::size_t outputs = 0;
        for (const net::EventMsg &event : events) {
            ASSERT_TRUE(plane.ingest(event).ok) << "seq " << event.seq;
            outputs += plane.takeOutputs().size();
        }
        plane.declareFinished(events.size());
        ASSERT_TRUE(plane.completeRun().ok);
        outputs += plane.takeOutputs().size();

        EXPECT_EQ(plane.summary(), expected) << "threads=" << threads;
        EXPECT_EQ(outputs, plane.epochsCommitted())
            << "threads=" << threads;
    }
}

TEST(ServicePlane, OutOfOrderMultiConnectionStreamStillMatchesRun)
{
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 200, 3);
    std::vector<net::EventMsg> events = wireEventsOf(trace);

    FrameworkConfig config;
    config.execution.threads = 2;
    OnlineDriver reference(fx.catalog, fx.model, config, 23);
    const std::string expected = summaryOf(reference.run(trace));

    // The order three concurrent connections might interleave in:
    // arbitrary globally, in-order per connection. A full shuffle
    // subsumes that and more.
    std::mt19937 rng(42);
    std::shuffle(events.begin(), events.end(), rng);

    OnlineDriver served(fx.catalog, fx.model, config, 23);
    net::ServicePlane plane(fx.catalog, served);
    for (const net::EventMsg &event : events)
        ASSERT_TRUE(plane.ingest(event).ok) << "seq " << event.seq;

    // Three clients declare their split of the count.
    plane.declareFinished(events.size() / 3);
    plane.declareFinished(events.size() / 3);
    plane.declareFinished(events.size() - 2 * (events.size() / 3));
    ASSERT_TRUE(plane.completeRun().ok);
    EXPECT_EQ(plane.summary(), expected);
}

TEST(ServicePlane, ShardedServedReplayMatchesRunByteForByte)
{
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 160, 5);
    const std::vector<net::EventMsg> events = wireEventsOf(trace);

    for (const std::size_t shards : {1u, 4u}) {
        FrameworkConfig config;
        config.execution.threads = 2;
        config.execution.online.shards = shards;

        ShardedDriver reference(fx.catalog, fx.model, config, 29);
        const std::string expected = summaryOf(reference.run(trace));

        ShardedDriver served(fx.catalog, fx.model, config, 29);
        net::ServicePlane plane(fx.catalog, served);
        for (const net::EventMsg &event : events)
            ASSERT_TRUE(plane.ingest(event).ok) << "seq " << event.seq;
        plane.declareFinished(events.size());
        ASSERT_TRUE(plane.completeRun().ok);

        EXPECT_EQ(plane.summary(), expected) << "shards=" << shards;
    }
}

// ---------------------------------------------------------------------
// ServicePlane: hostile streams poison the plane, not the process.

net::EventMsg
arrival(std::uint64_t seq, std::uint64_t tick, std::uint64_t uid,
        std::uint32_t type = 0)
{
    return {seq, tick, 0, uid, type};
}

TEST(ServicePlane, DuplicateSeqPoisonsThePlane)
{
    const Fixture fx;
    FrameworkConfig config;
    config.execution.threads = 1;
    OnlineDriver driver(fx.catalog, fx.model, config, 1);
    net::ServicePlane plane(fx.catalog, driver);

    ASSERT_TRUE(plane.ingest(arrival(0, 0, 1)).ok);
    const net::PlaneOutcome replay = plane.ingest(arrival(0, 0, 2));
    EXPECT_FALSE(replay.ok);
    EXPECT_EQ(replay.code, net::PlaneError::DuplicateSeq);

    // Poison sticks: a well-formed event now fails the same way.
    const net::PlaneOutcome later = plane.ingest(arrival(1, 0, 3));
    EXPECT_FALSE(later.ok);
    EXPECT_EQ(later.code, net::PlaneError::DuplicateSeq);
}

TEST(ServicePlane, ArrivalUidReuseIsRejected)
{
    const Fixture fx;
    FrameworkConfig config;
    config.execution.threads = 1;
    OnlineDriver driver(fx.catalog, fx.model, config, 1);
    net::ServicePlane plane(fx.catalog, driver);

    ASSERT_TRUE(plane.ingest(arrival(0, 0, 7)).ok);
    const net::PlaneOutcome outcome = plane.ingest(arrival(1, 0, 7));
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.code, net::PlaneError::UidReuse);
}

TEST(ServicePlane, DepartureOfUnknownUidIsRejected)
{
    const Fixture fx;
    FrameworkConfig config;
    config.execution.threads = 1;
    OnlineDriver driver(fx.catalog, fx.model, config, 1);
    net::ServicePlane plane(fx.catalog, driver);

    const net::PlaneOutcome outcome =
        plane.ingest({0, 0, 1, 9, 0});
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.code, net::PlaneError::UnknownUid);
}

TEST(ServicePlane, ArrivalTypeOutsideTheCatalogIsRejected)
{
    const Fixture fx;
    FrameworkConfig config;
    config.execution.threads = 1;
    OnlineDriver driver(fx.catalog, fx.model, config, 1);
    net::ServicePlane plane(fx.catalog, driver);

    const net::PlaneOutcome outcome = plane.ingest(
        arrival(0, 0, 1,
                static_cast<std::uint32_t>(fx.catalog.size())));
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.code, net::PlaneError::BadType);
}

TEST(ServicePlane, SeqFarAheadOfTheFrontierIsRejected)
{
    const Fixture fx;
    FrameworkConfig config;
    config.execution.threads = 1;
    OnlineDriver driver(fx.catalog, fx.model, config, 1);
    net::ServicePlane plane(fx.catalog, driver);

    const net::PlaneOutcome outcome =
        plane.ingest(arrival(net::kMaxPendingEvents, 0, 1));
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.code, net::PlaneError::SeqWindow);
}

TEST(ServicePlane, FinishingAcrossASeqGapIsRejected)
{
    const Fixture fx;
    FrameworkConfig config;
    config.execution.threads = 1;
    OnlineDriver driver(fx.catalog, fx.model, config, 1);
    net::ServicePlane plane(fx.catalog, driver);

    // seq 1 parks behind the missing seq 0 and never delivers.
    ASSERT_TRUE(plane.ingest(arrival(1, 0, 1)).ok);
    plane.declareFinished(1);
    const net::PlaneOutcome outcome = plane.completeRun();
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.code, net::PlaneError::MissingEvents);
}

TEST(ServicePlane, DeclaredCountMismatchIsRejected)
{
    const Fixture fx;
    FrameworkConfig config;
    config.execution.threads = 1;
    OnlineDriver driver(fx.catalog, fx.model, config, 1);
    net::ServicePlane plane(fx.catalog, driver);

    ASSERT_TRUE(plane.ingest(arrival(0, 0, 1)).ok);
    plane.declareFinished(2);
    const net::PlaneOutcome outcome = plane.completeRun();
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.code, net::PlaneError::CountMismatch);
}

TEST(ServicePlane, EventsAfterTheRunCompletedAreRejected)
{
    const Fixture fx;
    FrameworkConfig config;
    config.execution.threads = 1;
    OnlineDriver driver(fx.catalog, fx.model, config, 1);
    net::ServicePlane plane(fx.catalog, driver);

    plane.declareFinished(0);
    ASSERT_TRUE(plane.completeRun().ok);
    const net::PlaneOutcome outcome = plane.ingest(arrival(0, 0, 1));
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.code, net::PlaneError::AfterFinish);
}

// ---------------------------------------------------------------------
// ServicePlane: soft flow control (Busy) semantics.

TEST(ServicePlane, SoftBoundRefusesParkedEventsButNeverTheFrontier)
{
    const Fixture fx;
    FrameworkConfig config;
    config.execution.threads = 1;
    OnlineDriver driver(fx.catalog, fx.model, config, 1);
    net::ServicePlane plane(fx.catalog, driver);
    plane.setFlowControl(2);

    // Source 5 parks two out-of-order events and hits its bound.
    EXPECT_EQ(plane.ingest(arrival(2, 0, 3), 5).status,
              net::IngestStatus::Accepted);
    EXPECT_EQ(plane.ingest(arrival(3, 0, 4), 5).status,
              net::IngestStatus::Accepted);
    EXPECT_EQ(plane.ingest(arrival(4, 0, 5), 5).status,
              net::IngestStatus::Busy);

    // The bound is per source: a neighbor can still park...
    EXPECT_EQ(plane.ingest(arrival(4, 0, 5), 6).status,
              net::IngestStatus::Accepted);

    // ...and the frontier event is never refused, even from the
    // saturated source — that is what guarantees progress.
    EXPECT_EQ(plane.ingest(arrival(0, 0, 1), 5).status,
              net::IngestStatus::Accepted);

    // Delivering seq 0 freed nothing (1 is still missing), but the
    // frontier keeps moving: seq 1 drains everything parked.
    EXPECT_EQ(plane.ingest(arrival(1, 0, 2), 5).status,
              net::IngestStatus::Accepted);

    // The refused event retries successfully after the drain.
    EXPECT_EQ(plane.ingest(arrival(5, 0, 6), 5).status,
              net::IngestStatus::Accepted);

    plane.declareFinished(6);
    EXPECT_TRUE(plane.completeRun().ok);
}

TEST(ServicePlane, FlowControlledShuffledReplayStaysByteIdentical)
{
    // A Busy refusal must leave no trace in the served decisions:
    // replay a fully shuffled stream through a tiny bound, retrying
    // refusals, and demand the in-process bytes.
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 200, 3);
    std::vector<net::EventMsg> events = wireEventsOf(trace);

    FrameworkConfig config;
    config.execution.threads = 2;
    OnlineDriver reference(fx.catalog, fx.model, config, 23);
    const std::string expected = summaryOf(reference.run(trace));

    std::mt19937 rng(7);
    std::shuffle(events.begin(), events.end(), rng);

    OnlineDriver served(fx.catalog, fx.model, config, 23);
    net::ServicePlane plane(fx.catalog, served);
    plane.setFlowControl(3);

    std::vector<net::EventMsg> deferred = events;
    std::size_t refusals = 0;
    while (!deferred.empty()) {
        std::vector<net::EventMsg> next;
        for (const net::EventMsg &event : deferred) {
            const net::IngestResult result =
                plane.ingest(event, event.seq % 3);
            if (result.status == net::IngestStatus::Busy) {
                next.push_back(event);
                ++refusals;
                continue;
            }
            ASSERT_EQ(result.status, net::IngestStatus::Accepted)
                << "seq " << event.seq << ": "
                << result.outcome.message;
        }
        next.swap(deferred);
    }
    EXPECT_GT(refusals, 0u) << "the bound never engaged";

    plane.declareFinished(events.size());
    ASSERT_TRUE(plane.completeRun().ok);
    EXPECT_EQ(plane.summary(), expected);
}

#ifdef __linux__
// ---------------------------------------------------------------------
// EpollServer on real loopback sockets.

int
connectLoopback(std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    return fd;
}

void
sendAll(int fd, const std::vector<std::uint8_t> &bytes,
        std::size_t count)
{
    std::size_t sent = 0;
    while (sent < count) {
        const ssize_t n =
            ::send(fd, bytes.data() + sent, count - sent, 0);
        ASSERT_GT(n, 0);
        sent += static_cast<std::size_t>(n);
    }
}

/** Block until one frame of `want` arrives (skipping others). */
void
awaitFrame(int fd, net::MsgType want)
{
    std::vector<std::uint8_t> buffer;
    std::uint8_t chunk[4096];
    for (;;) {
        net::FrameView frame;
        std::size_t consumed = 0;
        std::string error;
        while (net::tryDecodeFrame(buffer.data(), buffer.size(),
                                   frame, consumed,
                                   error) == net::DecodeStatus::Ok) {
            if (frame.type == want)
                return;
            buffer.erase(buffer.begin(),
                         buffer.begin() +
                             static_cast<std::ptrdiff_t>(consumed));
        }
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        ASSERT_GT(n, 0) << "peer closed before "
                        << net::msgTypeName(want);
        buffer.insert(buffer.end(), chunk,
                      chunk + static_cast<std::size_t>(n));
    }
}

TEST(EpollServer, MidMessageDisconnectAbortsTheServedRun)
{
    const Fixture fx;
    FrameworkConfig config;
    config.execution.threads = 1;
    OnlineDriver driver(fx.catalog, fx.model, config, 1);
    net::ServicePlane plane(fx.catalog, driver);
    net::EpollServer server(plane, net::ServerConfig{});

    bool served = true;
    std::thread serving([&] { served = server.runUntilServed(); });

    const int fd = connectLoopback(server.port());
    std::vector<std::uint8_t> hello_payload;
    net::HelloMsg{0, net::kProtocolVersion, 0}.encode(hello_payload);
    sendAll(fd, frameOf(net::MsgType::Hello, hello_payload),
            net::kHeaderSize + hello_payload.size());
    awaitFrame(fd, net::MsgType::HelloAck);

    // Half an Event frame, then a hard close: a handshaked
    // participant vanished mid-message, so the run cannot complete.
    std::vector<std::uint8_t> event_payload;
    net::EventMsg{0, 0, 0, 1, 0}.encode(event_payload);
    const std::vector<std::uint8_t> bytes =
        frameOf(net::MsgType::Event, event_payload);
    sendAll(fd, bytes, bytes.size() / 2);
    ::close(fd);

    serving.join();
    EXPECT_FALSE(served);
    EXPECT_FALSE(server.lastError().empty());
}

TEST(EpollServer, GarbageStrangerDoesNotDisturbTheServedRun)
{
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 60, 11);

    FrameworkConfig config;
    config.execution.threads = 1;
    OnlineDriver reference(fx.catalog, fx.model, config, 13);
    const std::string expected = summaryOf(reference.run(trace));

    OnlineDriver served(fx.catalog, fx.model, config, 13);
    net::ServicePlane plane(fx.catalog, served);
    net::EpollServer server(plane, net::ServerConfig{});

    bool ok = false;
    std::thread serving([&] { ok = server.runUntilServed(); });

    // A stranger that never handshakes and speaks garbage: its
    // connection dies alone, the run does not.
    const int stranger = connectLoopback(server.port());
    const std::vector<std::uint8_t> garbage(64, 0x5A);
    sendAll(stranger, garbage, garbage.size());

    net::LoadGenConfig client;
    client.port = server.port();
    client.connections = 2;
    const net::LoadGenResult result = net::runLoadGen(trace, client);
    serving.join();
    ::close(stranger);

    ASSERT_TRUE(ok) << server.lastError();
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.summary, expected);
}

TEST(EpollServer, DribbledFramesAcrossManyReadsStillServe)
{
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 20, 19);
    const std::vector<net::EventMsg> events = wireEventsOf(trace);

    FrameworkConfig config;
    config.execution.threads = 1;
    OnlineDriver reference(fx.catalog, fx.model, config, 7);
    const std::string expected = summaryOf(reference.run(trace));

    OnlineDriver served(fx.catalog, fx.model, config, 7);
    net::ServicePlane plane(fx.catalog, served);
    net::EpollServer server(plane, net::ServerConfig{});

    bool ok = false;
    std::thread serving([&] { ok = server.runUntilServed(); });

    const int fd = connectLoopback(server.port());
    std::vector<std::uint8_t> hello_payload;
    net::HelloMsg{0, net::kProtocolVersion, 0}.encode(hello_payload);
    sendAll(fd, frameOf(net::MsgType::Hello, hello_payload),
            net::kHeaderSize + hello_payload.size());
    awaitFrame(fd, net::MsgType::HelloAck);

    // The whole event stream plus Finished, sent 7 bytes at a time
    // with TCP_NODELAY-free pacing: every frame straddles reads.
    std::vector<std::uint8_t> stream;
    for (const net::EventMsg &event : events) {
        std::vector<std::uint8_t> payload;
        event.encode(payload);
        net::encodeFrame(stream, net::MsgType::Event, 0,
                         payload.data(), payload.size());
    }
    {
        std::vector<std::uint8_t> payload;
        net::FinishedMsg{events.size()}.encode(payload);
        net::encodeFrame(stream, net::MsgType::Finished, 0,
                         payload.data(), payload.size());
    }
    for (std::size_t at = 0; at < stream.size(); at += 7) {
        const std::size_t len = std::min<std::size_t>(
            7, stream.size() - at);
        std::vector<std::uint8_t> chunk(
            stream.begin() + static_cast<std::ptrdiff_t>(at),
            stream.begin() + static_cast<std::ptrdiff_t>(at + len));
        sendAll(fd, chunk, chunk.size());
    }

    awaitFrame(fd, net::MsgType::Bye);
    ::close(fd);
    serving.join();

    ASSERT_TRUE(ok) << server.lastError();
    EXPECT_EQ(plane.summary(), expected);
}

// ---------------------------------------------------------------------
// Multi-run serving, flow control, and idle reaping.

void
sendHello(int fd, std::uint64_t runId)
{
    std::vector<std::uint8_t> payload;
    net::HelloMsg{0, net::kProtocolVersion, 0, runId}.encode(payload);
    sendAll(fd, frameOf(net::MsgType::Hello, payload),
            net::kHeaderSize + payload.size());
}

void
sendEvent(int fd, const net::EventMsg &msg)
{
    std::vector<std::uint8_t> payload;
    msg.encode(payload);
    sendAll(fd, frameOf(net::MsgType::Event, payload),
            net::kHeaderSize + payload.size());
}

void
sendFinished(int fd, std::uint64_t count)
{
    std::vector<std::uint8_t> payload;
    net::FinishedMsg{count}.encode(payload);
    sendAll(fd, frameOf(net::MsgType::Finished, payload),
            net::kHeaderSize + payload.size());
}

/** Block until one frame of `want` arrives; returns its payload. */
std::vector<std::uint8_t>
awaitPayload(int fd, net::MsgType want)
{
    std::vector<std::uint8_t> buffer;
    std::uint8_t chunk[4096];
    for (;;) {
        net::FrameView frame;
        std::size_t consumed = 0;
        std::string error;
        while (net::tryDecodeFrame(buffer.data(), buffer.size(),
                                   frame, consumed,
                                   error) == net::DecodeStatus::Ok) {
            if (frame.type == want)
                return {frame.payload, frame.payload + frame.size};
            buffer.erase(buffer.begin(),
                         buffer.begin() +
                             static_cast<std::ptrdiff_t>(consumed));
        }
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        EXPECT_GT(n, 0) << "peer closed before "
                        << net::msgTypeName(want);
        if (n <= 0)
            return {};
        buffer.insert(buffer.end(), chunk,
                      chunk + static_cast<std::size_t>(n));
    }
}

TEST(EpollServer, BusyPushbackRoundTripAndRetry)
{
    const Fixture fx;
    FrameworkConfig config;
    config.execution.threads = 1;
    OnlineDriver driver(fx.catalog, fx.model, config, 1);
    net::ServicePlane plane(fx.catalog, driver);

    net::ServerConfig server_config;
    server_config.maxPendingPerConn = 2;
    server_config.busyRetryHintMs = 3;
    net::EpollServer server(plane, server_config);

    bool served = false;
    std::thread serving([&] { served = server.runUntilServed(); });

    const int fd = connectLoopback(server.port());
    sendHello(fd, 0);
    awaitFrame(fd, net::MsgType::HelloAck);

    // Two parked events fill the bound; the third earns Busy naming
    // its seq and the configured retry hint.
    sendEvent(fd, arrival(1, 0, 2));
    sendEvent(fd, arrival(2, 0, 3));
    sendEvent(fd, arrival(3, 0, 4));
    const std::vector<std::uint8_t> payload =
        awaitPayload(fd, net::MsgType::Busy);
    net::FrameView frame;
    frame.type = net::MsgType::Busy;
    frame.payload = payload.data();
    frame.size = payload.size();
    const net::BusyMsg busy = net::BusyMsg::decode(frame);
    EXPECT_EQ(busy.seq, 3u);
    EXPECT_EQ(busy.retryAfterMs, 3u);

    // The frontier event drains the parked pair; the refused event
    // retries clean and the run completes as if nothing happened.
    sendEvent(fd, arrival(0, 0, 1));
    sendEvent(fd, arrival(3, 0, 4));
    sendFinished(fd, 4);
    awaitFrame(fd, net::MsgType::Bye);
    ::close(fd);
    serving.join();

    EXPECT_TRUE(served) << server.lastError();
    EXPECT_EQ(plane.eventsIngested(), 4u);
}

TEST(EpollServer, LoadGenBacksOffUnderATinyFlowBound)
{
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 80, 31);

    FrameworkConfig config;
    config.execution.threads = 1;
    OnlineDriver reference(fx.catalog, fx.model, config, 37);
    const std::string expected = summaryOf(reference.run(trace));

    OnlineDriver served(fx.catalog, fx.model, config, 37);
    net::ServicePlane plane(fx.catalog, served);
    net::ServerConfig server_config;
    server_config.maxPendingPerConn = 1;
    net::EpollServer server(plane, server_config);

    bool ok = false;
    std::thread serving([&] { ok = server.runUntilServed(); });

    net::LoadGenConfig client;
    client.port = server.port();
    client.connections = 3;
    const net::LoadGenResult result = net::runLoadGen(trace, client);
    serving.join();

    ASSERT_TRUE(ok) << server.lastError();
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_GT(result.stats.busyRefusals, 0u)
        << "a 3-way split through a bound of 1 never hit Busy";
    EXPECT_EQ(result.stats.retriesSent, result.stats.busyRefusals);
    EXPECT_EQ(result.summary, expected);
}

TEST(EpollServer, NeverDrainingTenantDoesNotStallItsNeighbors)
{
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 60, 41);
    const std::vector<net::EventMsg> events = wireEventsOf(trace);

    FrameworkConfig config;
    config.execution.threads = 1;
    OnlineDriver reference(fx.catalog, fx.model, config, 43);
    const std::string expected = summaryOf(reference.run(trace));

    OnlineDriver driver0(fx.catalog, fx.model, config, 43);
    net::ServicePlane plane0(fx.catalog, driver0);
    OnlineDriver driver1(fx.catalog, fx.model, config, 44);
    net::ServicePlane plane1(fx.catalog, driver1);

    net::ServerConfig server_config;
    server_config.maxPendingPerConn = 2;
    net::EpollServer server(server_config);
    server.addRun(0, plane0);
    server.addRun(1, plane1);

    bool served = true;
    std::thread serving([&] { served = server.runUntilServed(); });

    // The stalled tenant: run 1 parks events behind a gap it never
    // fills, saturates its bound, and then just sits there.
    const int stalled = connectLoopback(server.port());
    sendHello(stalled, 1);
    awaitFrame(stalled, net::MsgType::HelloAck);
    sendEvent(stalled, arrival(1, 0, 2));
    sendEvent(stalled, arrival(2, 0, 3));
    sendEvent(stalled, arrival(3, 0, 4));
    awaitFrame(stalled, net::MsgType::Busy);

    // The neighbor replays run 0 to completion meanwhile — the
    // stalled tenant's backlog is bounded and cannot wedge the loop.
    const int fd = connectLoopback(server.port());
    sendHello(fd, 0);
    awaitFrame(fd, net::MsgType::HelloAck);
    for (const net::EventMsg &event : events)
        sendEvent(fd, event);
    sendFinished(fd, events.size());
    awaitFrame(fd, net::MsgType::Bye);
    ::close(fd);

    // Only now does the stalled tenant die — and only its own run.
    ::close(stalled);
    serving.join();

    EXPECT_FALSE(served);
    EXPECT_TRUE(server.runServed(0)) << server.runError(0);
    EXPECT_FALSE(server.runServed(1));
    EXPECT_FALSE(server.runError(1).empty());
    EXPECT_EQ(plane0.summary(), expected);
}

TEST(EpollServer, IdleConnectionIsReapedAndAbortsItsRun)
{
    const Fixture fx;
    FrameworkConfig config;
    config.execution.threads = 1;
    OnlineDriver driver(fx.catalog, fx.model, config, 1);
    net::ServicePlane plane(fx.catalog, driver);

    net::ServerConfig server_config;
    server_config.idleTimeoutMs = 100;
    net::EpollServer server(plane, server_config);

    bool served = true;
    std::thread serving([&] { served = server.runUntilServed(); });

    // Handshake, then go silent: the timer wheel must reap this
    // connection instead of waiting on TCP forever.
    const int fd = connectLoopback(server.port());
    sendHello(fd, 0);
    awaitFrame(fd, net::MsgType::HelloAck);
    serving.join();
    ::close(fd);

    EXPECT_FALSE(served);
    EXPECT_NE(server.lastError().find("idle"), std::string::npos)
        << server.lastError();
}

TEST(EpollServer, DuplicateRunRegistrationIsFatal)
{
    const Fixture fx;
    FrameworkConfig config;
    config.execution.threads = 1;
    OnlineDriver driver(fx.catalog, fx.model, config, 1);
    net::ServicePlane plane(fx.catalog, driver);

    net::EpollServer server{net::ServerConfig{}};
    server.addRun(4, plane);
    EXPECT_THROW(server.addRun(4, plane), FatalError);
}

TEST(EpollServer, HelloNamingAnUnknownRunIsRefusedAloneAndTheRunServes)
{
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 40, 47);

    FrameworkConfig config;
    config.execution.threads = 1;
    OnlineDriver reference(fx.catalog, fx.model, config, 53);
    const std::string expected = summaryOf(reference.run(trace));

    OnlineDriver served(fx.catalog, fx.model, config, 53);
    net::ServicePlane plane(fx.catalog, served);
    net::EpollServer server(plane, net::ServerConfig{});

    bool ok = false;
    std::thread serving([&] { ok = server.runUntilServed(); });

    // A client naming a run the server never registered gets an
    // Error and dies alone; run 0 is untouched.
    const int stranger = connectLoopback(server.port());
    sendHello(stranger, 7);
    awaitFrame(stranger, net::MsgType::Error);

    net::LoadGenConfig client;
    client.port = server.port();
    client.connections = 2;
    const net::LoadGenResult result = net::runLoadGen(trace, client);
    serving.join();
    ::close(stranger);

    ASSERT_TRUE(ok) << server.lastError();
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.summary, expected);
}

TEST(EpollServer, SeqPoisonInOneRunDoesNotCrossIntoAnother)
{
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 60, 59);

    FrameworkConfig config;
    config.execution.threads = 1;
    OnlineDriver reference(fx.catalog, fx.model, config, 61);
    const std::string expected = summaryOf(reference.run(trace));

    OnlineDriver driver0(fx.catalog, fx.model, config, 61);
    net::ServicePlane plane0(fx.catalog, driver0);
    OnlineDriver driver1(fx.catalog, fx.model, config, 62);
    net::ServicePlane plane1(fx.catalog, driver1);

    net::EpollServer server{net::ServerConfig{}};
    server.addRun(0, plane0);
    server.addRun(1, plane1);

    bool served = true;
    std::thread serving([&] { served = server.runUntilServed(); });

    // Run 1's client replays a duplicate seq — sticky poison for its
    // plane, an Error and an abort for its run.
    const int poisoner = connectLoopback(server.port());
    sendHello(poisoner, 1);
    awaitFrame(poisoner, net::MsgType::HelloAck);
    sendEvent(poisoner, arrival(0, 0, 1));
    sendEvent(poisoner, arrival(0, 0, 2));
    awaitFrame(poisoner, net::MsgType::Error);

    // Run 0 serves to completion, byte-identical, as if run 1 never
    // existed.
    net::LoadGenConfig client;
    client.port = server.port();
    client.connections = 2;
    const net::LoadGenResult result = net::runLoadGen(trace, client);
    serving.join();
    ::close(poisoner);

    EXPECT_FALSE(served);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_TRUE(server.runServed(0)) << server.runError(0);
    EXPECT_FALSE(server.runServed(1));
    EXPECT_NE(server.runError(1).find("duplicate"),
              std::string::npos)
        << server.runError(1);
    EXPECT_EQ(result.summary, expected);
}
#endif // __linux__

} // namespace
} // namespace cooper
