/**
 * @file
 * Canonical stable-roommates instances from the literature, plus
 * adversarial structures that stress phase 2 (rotation elimination).
 */

#include <gtest/gtest.h>

#include "matching/blocking.hh"
#include "matching/stable_roommates.hh"
#include "util/rng.hh"

namespace cooper {
namespace {

TEST(RoommatesInstances, GusfieldIrvingEightAgent)
{
    // 8-agent instance from Gusfield & Irving's book (Example 1.17,
    // 0-indexed); known to require phase-2 rotation eliminations.
    PreferenceProfile prefs({{1, 4, 3, 5, 6, 7, 2},
                             {2, 5, 4, 0, 6, 7, 3},
                             {3, 6, 5, 1, 7, 0, 4},
                             {4, 7, 6, 2, 0, 1, 5},
                             {5, 0, 7, 3, 1, 2, 6},
                             {6, 1, 0, 4, 2, 3, 7},
                             {7, 2, 1, 5, 3, 4, 0},
                             {0, 3, 2, 6, 4, 5, 1}},
                            8);
    const auto matching = stableRoommates(prefs);
    if (matching.has_value()) {
        EXPECT_TRUE(matching->isPerfect());
        EXPECT_TRUE(isStableMatching(*matching, prefs));
    }
    // Either way the adapted variant must produce a perfect matching.
    const RoommatesResult adapted = adaptedRoommates(
        prefs, [&](AgentId a, AgentId b) {
            return static_cast<double>(prefs.rankOf(a, b));
        });
    EXPECT_TRUE(adapted.matching.isPerfect());
}

TEST(RoommatesInstances, MutualFirstChoicesAlwaysPair)
{
    // Agents 0-1 and 2-3 rank each other first; any stable matching
    // must pair mutual first choices.
    PreferenceProfile prefs({{1, 2, 3},
                             {0, 2, 3},
                             {3, 0, 1},
                             {2, 0, 1}},
                            4);
    const auto matching = stableRoommates(prefs);
    ASSERT_TRUE(matching.has_value());
    EXPECT_EQ(matching->partnerOf(0), 1u);
    EXPECT_EQ(matching->partnerOf(2), 3u);
}

TEST(RoommatesInstances, IdenticalPreferenceOrders)
{
    // Everyone ranks candidates by ascending index: assortative
    // pairing 0-1, 2-3, 4-5 is the unique stable outcome.
    std::vector<std::vector<AgentId>> lists(6);
    for (AgentId i = 0; i < 6; ++i)
        for (AgentId j = 0; j < 6; ++j)
            if (j != i)
                lists[i].push_back(j);
    PreferenceProfile prefs(std::move(lists), 6);
    const auto matching = stableRoommates(prefs);
    ASSERT_TRUE(matching.has_value());
    EXPECT_EQ(matching->partnerOf(0), 1u);
    EXPECT_EQ(matching->partnerOf(2), 3u);
    EXPECT_EQ(matching->partnerOf(4), 5u);
}

TEST(RoommatesInstances, SixAgentUnsolvableOddParty)
{
    // Three agents in a preference cycle all ranked above the rest;
    // extending the 4-agent odd-party construction to 6 keeps it
    // unsolvable.
    PreferenceProfile prefs({{1, 2, 3, 4, 5},
                             {2, 0, 3, 4, 5},
                             {0, 1, 3, 4, 5},
                             {0, 1, 2, 4, 5},
                             {0, 1, 2, 3, 5},
                             {0, 1, 2, 3, 4}},
                            6);
    EXPECT_FALSE(stableRoommates(prefs).has_value());
    // Adapted mode still pairs everyone.
    const RoommatesResult adapted = adaptedRoommates(
        prefs, [](AgentId, AgentId) { return 0.5; });
    EXPECT_TRUE(adapted.matching.isPerfect());
    EXPECT_FALSE(adapted.perfectlyStable);
}

TEST(RoommatesInstances, LargeRandomInstancesStaySane)
{
    Rng rng(4242);
    for (std::size_t n : {200u, 500u}) {
        std::vector<std::vector<AgentId>> lists(n);
        for (AgentId i = 0; i < n; ++i) {
            for (AgentId j = 0; j < n; ++j)
                if (j != i)
                    lists[i].push_back(j);
            rng.shuffle(lists[i]);
        }
        PreferenceProfile prefs(std::move(lists), n);
        // Rank-consistent disutility for the fallback.
        const RoommatesResult result = adaptedRoommates(
            prefs, [&](AgentId a, AgentId b) {
                return static_cast<double>(prefs.rankOf(a, b)) /
                       static_cast<double>(n);
            });
        EXPECT_TRUE(result.matching.isPerfect()) << "n=" << n;
        EXPECT_TRUE(result.matching.consistent());
        // Either Irving solved it outright or the fallback kicked in;
        // in both cases blocking pairs must be a vanishing fraction.
        const std::size_t blocking = countBlockingPairs(
            result.matching,
            [&](AgentId a, AgentId b) {
                return static_cast<double>(prefs.rankOf(a, b));
            },
            0.0);
        EXPECT_LT(blocking, n) << "n=" << n;
    }
}

TEST(RoommatesInstances, ProposalAndRotationCountsReported)
{
    Rng rng(99);
    std::vector<std::vector<AgentId>> lists(16);
    for (AgentId i = 0; i < 16; ++i) {
        for (AgentId j = 0; j < 16; ++j)
            if (j != i)
                lists[i].push_back(j);
        rng.shuffle(lists[i]);
    }
    PreferenceProfile prefs(std::move(lists), 16);
    const RoommatesResult result = adaptedRoommates(
        prefs, [](AgentId, AgentId) { return 0.1; });
    EXPECT_GE(result.proposals, 16u);
}

} // namespace
} // namespace cooper
