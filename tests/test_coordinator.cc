/**
 * @file
 * Unit tests for the system coordinator.
 */

#include <gtest/gtest.h>

#include "core/coordinator.hh"
#include "core/experiment.hh"
#include "util/error.hh"

namespace cooper {
namespace {

class CoordinatorTest : public ::testing::Test
{
  protected:
    Catalog catalog_ = Catalog::paperTableI();
    InterferenceModel model_{catalog_};
};

TEST_F(CoordinatorTest, ProfilesAreLazyAndCached)
{
    CoordinatorConfig config;
    config.sampleRatio = 0.25;
    Coordinator coordinator(catalog_, model_, config, 1);
    EXPECT_EQ(coordinator.database().totalSamples(), 0u);

    const SparseMatrix &first = coordinator.profiles();
    const std::size_t samples = coordinator.database().totalSamples();
    EXPECT_GT(samples, 0u);

    // Second query returns the cached matrix; no new measurements.
    const SparseMatrix &second = coordinator.profiles();
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(coordinator.database().totalSamples(), samples);
}

TEST_F(CoordinatorTest, RefreshResamples)
{
    CoordinatorConfig config;
    Coordinator coordinator(catalog_, model_, config, 2);
    coordinator.profiles();
    const std::size_t samples = coordinator.database().totalSamples();
    coordinator.refreshProfiles();
    coordinator.profiles();
    EXPECT_GT(coordinator.database().totalSamples(), samples);
}

TEST_F(CoordinatorTest, ProfileDensityMatchesConfig)
{
    CoordinatorConfig config;
    config.sampleRatio = 0.4;
    Coordinator coordinator(catalog_, model_, config, 3);
    EXPECT_GE(coordinator.profiles().density(), 0.4);
}

TEST_F(CoordinatorTest, RepeatsMultiplyMeasurements)
{
    CoordinatorConfig one;
    one.profileRepeats = 1;
    CoordinatorConfig five;
    five.profileRepeats = 5;
    Coordinator a(catalog_, model_, one, 4);
    Coordinator b(catalog_, model_, five, 4);
    a.profiles();
    b.profiles();
    EXPECT_GT(b.database().totalSamples(),
              3 * a.database().totalSamples());
}

TEST_F(CoordinatorTest, ColocateUsesConfiguredPolicy)
{
    CoordinatorConfig config;
    config.policy = "CO";
    Coordinator coordinator(catalog_, model_, config, 5);
    Rng rng(1);
    const auto instance =
        sampleInstance(catalog_, model_, 40, MixKind::Uniform, rng);
    Rng policy_rng(2);
    const Matching m = coordinator.colocate(instance, policy_rng);
    EXPECT_TRUE(m.isPerfect());

    // CO is deterministic: matches a directly constructed policy.
    Rng direct_rng(2);
    const Matching direct =
        ComplementaryPolicy().assign(instance, direct_rng);
    EXPECT_EQ(m.pairs(), direct.pairs());
}

TEST_F(CoordinatorTest, DispatchDefaultsToOneMachinePerPair)
{
    CoordinatorConfig config;
    Coordinator coordinator(catalog_, model_, config, 6);
    std::vector<PairAssignment> pairs(
        4, PairAssignment{0, 1});
    const DispatchReport report = coordinator.dispatch(pairs);
    // Four machines -> all pairs start immediately.
    for (const auto &done : report.completions)
        EXPECT_DOUBLE_EQ(done.startSec, 0.0);
}

TEST_F(CoordinatorTest, DispatchHonorsMachineBudget)
{
    CoordinatorConfig config;
    config.machines = 1;
    Coordinator coordinator(catalog_, model_, config, 7);
    std::vector<PairAssignment> pairs(3, PairAssignment{0, 1});
    const DispatchReport report = coordinator.dispatch(pairs);
    EXPECT_GT(report.completions[2].startSec, 0.0);
}

TEST_F(CoordinatorTest, BadConfigFatal)
{
    CoordinatorConfig bad_ratio;
    bad_ratio.sampleRatio = 0.0;
    EXPECT_THROW(Coordinator(catalog_, model_, bad_ratio, 1),
                 FatalError);
    CoordinatorConfig bad_repeats;
    bad_repeats.profileRepeats = 0;
    EXPECT_THROW(Coordinator(catalog_, model_, bad_repeats, 1),
                 FatalError);
    CoordinatorConfig bad_policy;
    bad_policy.policy = "ZZ";
    EXPECT_THROW(Coordinator(catalog_, model_, bad_policy, 1),
                 FatalError);
}

} // namespace
} // namespace cooper
