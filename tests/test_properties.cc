/**
 * @file
 * Parameterized property tests: invariants that must hold across
 * sweeps of population sizes, seeds, policies, and workload mixes.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "cf/accuracy.hh"
#include "cf/item_knn.hh"
#include "cf/subsample.hh"
#include "core/experiment.hh"
#include "core/policies.hh"
#include "matching/blocking.hh"
#include "matching/stable_marriage.hh"
#include "matching/stable_roommates.hh"
#include "sim/profiler.hh"
#include "util/rng.hh"

namespace cooper {
namespace {

// ---------------------------------------------------------------------
// Property: every policy returns a consistent, maximal matching on any
// population size, mix, and seed.
// ---------------------------------------------------------------------

using PolicyCase = std::tuple<std::string, std::size_t, int, int>;

class PolicyInvariants : public ::testing::TestWithParam<PolicyCase>
{
  protected:
    Catalog catalog_ = Catalog::paperTableI();
    InterferenceModel model_{catalog_};
};

TEST_P(PolicyInvariants, MatchingIsConsistentAndMaximal)
{
    const auto &[name, agents, mix_index, seed] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed));
    const auto instance = sampleInstance(
        catalog_, model_, agents,
        allMixes()[static_cast<std::size_t>(mix_index)], rng);
    const auto policy = makePolicy(name);
    const Matching m = policy->assign(instance, rng);

    EXPECT_TRUE(m.consistent());
    EXPECT_EQ(m.size(), agents);
    // All figure policies pair everyone (threshold may not).
    if (name != "TH") {
        EXPECT_EQ(m.pairCount(), agents / 2);
    }

    // Penalties of matched agents are valid disutilities.
    for (double d : instance.truePenalties(m)) {
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    PolicySweep, PolicyInvariants,
    ::testing::Combine(
        ::testing::Values("GR", "CO", "SMP", "SMR", "SR", "TH"),
        ::testing::Values(std::size_t(10), std::size_t(57),
                          std::size_t(128)),
        ::testing::Values(0, 1, 2, 3), ::testing::Values(1, 97)));

// ---------------------------------------------------------------------
// Property: marriage outcomes are stable for every size and seed.
// ---------------------------------------------------------------------

class MarriageStability
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>>
{};

TEST_P(MarriageStability, NoBlockingPairs)
{
    const auto &[n, seed] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed));
    std::vector<std::vector<AgentId>> mlists(n), wlists(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            mlists[i].push_back(j);
            wlists[i].push_back(j);
        }
        rng.shuffle(mlists[i]);
        rng.shuffle(wlists[i]);
    }
    PreferenceProfile proposers(std::move(mlists), n);
    PreferenceProfile acceptors(std::move(wlists), n);
    const MarriageResult result = stableMarriage(proposers, acceptors);
    EXPECT_EQ(marriageBlockingPairs(proposers, acceptors,
                                    result.proposerPartner),
              0u);
}

INSTANTIATE_TEST_SUITE_P(
    MarriageSweep, MarriageStability,
    ::testing::Combine(::testing::Values(std::size_t(1), std::size_t(2),
                                         std::size_t(17),
                                         std::size_t(64)),
                       ::testing::Values(3, 7, 23)));

// ---------------------------------------------------------------------
// Property: adapted roommates produces perfect matchings whose
// blocking pairs never exceed greedy's on identical instances.
// ---------------------------------------------------------------------

class RoommatesVsGreedy
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>>
{
  protected:
    Catalog catalog_ = Catalog::paperTableI();
    InterferenceModel model_{catalog_};
};

TEST_P(RoommatesVsGreedy, StableSideNeverWorse)
{
    const auto &[n, seed] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed));
    const auto instance =
        sampleInstance(catalog_, model_, n, MixKind::Uniform, rng);

    Rng rng_sr(1), rng_gr(1);
    const Matching sr =
        StableRoommatePolicy().assign(instance, rng_sr);
    const Matching gr = GreedyPolicy().assign(instance, rng_gr);
    const DisutilityFn d = [&](AgentId a, AgentId b) {
        return instance.trueDisutility(a, b);
    };
    EXPECT_LE(countBlockingPairs(sr, d, 0.0),
              countBlockingPairs(gr, d, 0.0));
}

INSTANTIATE_TEST_SUITE_P(
    RoommatesSweep, RoommatesVsGreedy,
    ::testing::Combine(::testing::Values(std::size_t(20),
                                         std::size_t(60),
                                         std::size_t(100)),
                       ::testing::Values(11, 19, 31)));

// ---------------------------------------------------------------------
// Property: CF preference accuracy improves as more profiles are
// sampled (Figure 12's trend), for several seeds.
// ---------------------------------------------------------------------

class CfAccuracyTrend : public ::testing::TestWithParam<int>
{
  protected:
    Catalog catalog_ = Catalog::paperTableI();
    InterferenceModel model_{catalog_};

    /**
     * Figure 12's protocol: the full measured profile database is the
     * "true list"; the predictor sees a sampled subset of its cells.
     */
    double
    accuracyAt(double ratio, std::uint64_t seed)
    {
        SystemProfiler profiler(model_, NoiseConfig{0.004, -0.02}, seed);
        const SparseMatrix full = profiler.sampleProfiles(1.0);
        Rng rng(seed * 31 + 7);
        const SparseMatrix sparse =
            subsampleSymmetric(full, ratio, 2, rng);

        ItemKnnPredictor predictor;
        const Prediction p = predictor.predict(sparse);
        const std::size_t n = catalog_.size();
        std::vector<std::vector<double>> truth(
            n, std::vector<double>(n, 0.0));
        for (JobTypeId i = 0; i < n; ++i)
            for (JobTypeId j = 0; j < n; ++j)
                truth[i][j] = full.at(i, j);
        return preferenceAccuracy(truth, p.dense);
    }
};

TEST_P(CfAccuracyTrend, MoreProfilesMoreAccuracy)
{
    // Paper: accuracy starts near 83% with 25% of colocations
    // profiled and rises toward 95% with 75%.
    const auto seed = static_cast<std::uint64_t>(GetParam());
    const double sparse = accuracyAt(0.25, seed);
    const double dense = accuracyAt(0.75, seed);
    EXPECT_GT(sparse, 0.72);
    EXPECT_GT(dense, sparse);
    EXPECT_GT(dense, 0.90);
}

INSTANTIATE_TEST_SUITE_P(CfSweep, CfAccuracyTrend,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------
// Property: the fairness ordering of policies holds across seeds:
// SMR and SR correlate penalty with contentiousness more strongly
// than GR on uniform populations.
// ---------------------------------------------------------------------

class FairnessOrdering : public ::testing::TestWithParam<int>
{
  protected:
    Catalog catalog_ = Catalog::paperTableI();
    InterferenceModel model_{catalog_};
};

TEST_P(FairnessOrdering, StablePoliciesFairerThanGreedy)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const auto instance =
        sampleInstance(catalog_, model_, 600, MixKind::Uniform, rng);

    auto corr_for = [&](const std::string &name) {
        Rng policy_rng(77);
        const auto policy = makePolicy(name);
        const Matching m = policy->assign(instance, policy_rng);
        const auto rows = aggregateByType(instance, m);
        return fairness(rows).rankCorrelation;
    };
    const double gr = corr_for("GR");
    const double smr = corr_for("SMR");
    const double sr = corr_for("SR");
    EXPECT_GT(smr, gr);
    EXPECT_GT(sr, gr);
    EXPECT_GT(smr, 0.5);
    EXPECT_GT(sr, 0.5);
}

INSTANTIATE_TEST_SUITE_P(FairnessSweep, FairnessOrdering,
                         ::testing::Values(101, 202, 303));

} // namespace
} // namespace cooper
