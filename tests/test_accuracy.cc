/**
 * @file
 * Unit tests for the Equation 2 preference-accuracy metric.
 */

#include <gtest/gtest.h>

#include "cf/accuracy.hh"
#include "util/error.hh"

namespace cooper {
namespace {

std::vector<std::vector<double>>
matrix3(std::initializer_list<double> cells)
{
    std::vector<std::vector<double>> m(3, std::vector<double>(3, 0.0));
    auto it = cells.begin();
    for (auto &row : m)
        for (double &cell : row)
            cell = *it++;
    return m;
}

TEST(PreferenceAccuracy, PerfectPredictionScoresOne)
{
    const auto truth = matrix3({0.0, 0.1, 0.2,
                                0.3, 0.0, 0.1,
                                0.2, 0.4, 0.0});
    EXPECT_DOUBLE_EQ(preferenceAccuracy(truth, truth), 1.0);
}

TEST(PreferenceAccuracy, MonotoneTransformPreservesScore)
{
    const auto truth = matrix3({0.0, 0.1, 0.2,
                                0.3, 0.0, 0.1,
                                0.2, 0.4, 0.0});
    auto scaled = truth;
    for (auto &row : scaled)
        for (double &cell : row)
            cell = cell * 10.0 + 1.0;
    EXPECT_DOUBLE_EQ(preferenceAccuracy(truth, scaled), 1.0);
}

TEST(PreferenceAccuracy, TotalInversionScoresZero)
{
    const auto truth = matrix3({0.0, 0.1, 0.2,
                                0.1, 0.0, 0.2,
                                0.1, 0.2, 0.0});
    auto inverted = truth;
    for (auto &row : inverted)
        for (double &cell : row)
            cell = -cell;
    EXPECT_DOUBLE_EQ(preferenceAccuracy(truth, inverted), 0.0);
}

TEST(PreferenceAccuracy, OneBadPairCountsOnce)
{
    // Agent 0 ranks candidates {1, 2}; swap only that comparison.
    const auto truth = matrix3({0.0, 0.1, 0.2,
                                0.1, 0.0, 0.2,
                                0.1, 0.2, 0.0});
    auto pred = truth;
    pred[0][1] = 0.2;
    pred[0][2] = 0.1;
    // Each of 3 agents contributes C(2,2)=1 candidate pair.
    EXPECT_NEAR(preferenceAccuracy(truth, pred), 2.0 / 3.0, 1e-12);
}

TEST(PreferenceAccuracy, ShapeMismatchFatal)
{
    const auto truth = matrix3({0, 0, 0, 0, 0, 0, 0, 0, 0});
    std::vector<std::vector<double>> wrong(2,
                                           std::vector<double>(3, 0.0));
    EXPECT_THROW(preferenceAccuracy(truth, wrong), FatalError);
    EXPECT_THROW(preferenceAccuracy({}, {}), FatalError);
}

TEST(PreferenceAccuracy, TwoAgentsDegenerate)
{
    // With n=2 each agent has a single candidate: no pairs to rank.
    std::vector<std::vector<double>> truth(2,
                                           std::vector<double>(2, 0.0));
    EXPECT_DOUBLE_EQ(preferenceAccuracy(truth, truth), 1.0);
}

} // namespace
} // namespace cooper
