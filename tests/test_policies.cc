/**
 * @file
 * Unit tests for the colocation policies.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "core/experiment.hh"
#include "core/policies.hh"
#include "matching/blocking.hh"
#include "util/error.hh"

namespace cooper {
namespace {

class PolicyTest : public ::testing::Test
{
  protected:
    Catalog catalog_ = Catalog::paperTableI();
    InterferenceModel model_{catalog_};

    ColocationInstance
    makeInstance(std::size_t n, std::uint64_t seed = 1,
                 MixKind mix = MixKind::Uniform)
    {
        Rng rng(seed);
        return sampleInstance(catalog_, model_, n, mix, rng);
    }

    DisutilityFn
    oracle(const ColocationInstance &instance)
    {
        return [&instance](AgentId a, AgentId b) {
            return instance.trueDisutility(a, b);
        };
    }
};

TEST_F(PolicyTest, AllPoliciesProducePerfectMatchingsOnEvenPopulations)
{
    const auto instance = makeInstance(100);
    for (const auto &policy : figurePolicies()) {
        Rng rng(7);
        const Matching m = policy->assign(instance, rng);
        EXPECT_TRUE(m.consistent()) << policy->name();
        EXPECT_TRUE(m.isPerfect()) << policy->name();
    }
}

TEST_F(PolicyTest, OddPopulationsLeaveExactlyOneAlone)
{
    const auto instance = makeInstance(31);
    for (const auto &policy : figurePolicies()) {
        Rng rng(7);
        const Matching m = policy->assign(instance, rng);
        EXPECT_EQ(m.pairCount(), 15u) << policy->name();
    }
}

TEST_F(PolicyTest, GreedyBeatsRandomOnMeanPenalty)
{
    const auto instance = makeInstance(200, 3);
    Rng rng(11);
    GreedyPolicy greedy;
    const Matching gm = greedy.assign(instance, rng);

    // Random pairing for comparison.
    Matching random_m(instance.agents());
    auto perm = rng.permutation(instance.agents());
    for (std::size_t k = 0; k + 1 < perm.size(); k += 2)
        random_m.pair(perm[k], perm[k + 1]);

    EXPECT_LT(instance.meanTruePenalty(gm),
              instance.meanTruePenalty(random_m));
}

TEST_F(PolicyTest, ComplementaryPairsExtremesTogether)
{
    const auto instance = makeInstance(50, 5);
    Rng rng(1);
    ComplementaryPolicy co;
    const Matching m = co.assign(instance, rng);
    // The most demanding agent pairs with the least demanding.
    AgentId most = 0, least = 0;
    for (AgentId a = 1; a < instance.agents(); ++a) {
        const double d = catalog_.job(instance.typeOf(a)).gbps;
        if (d > catalog_.job(instance.typeOf(most)).gbps)
            most = a;
        if (d < catalog_.job(instance.typeOf(least)).gbps)
            least = a;
    }
    const double partner_demand =
        catalog_.job(instance.typeOf(m.partnerOf(most))).gbps;
    const double least_demand =
        catalog_.job(instance.typeOf(least)).gbps;
    EXPECT_NEAR(partner_demand, least_demand, 1e-9);
}

TEST_F(PolicyTest, SmpNeverPairsWithinSameHalf)
{
    const auto instance = makeInstance(60, 9);
    Rng rng(2);
    StableMarriagePartitionPolicy smp;
    const Matching m = smp.assign(instance, rng);

    // Recover the demand ordering to identify halves.
    std::vector<AgentId> order(instance.agents());
    std::iota(order.begin(), order.end(), AgentId(0));
    std::stable_sort(order.begin(), order.end(),
                     [&](AgentId a, AgentId b) {
                         return catalog_.job(instance.typeOf(a)).gbps <
                                catalog_.job(instance.typeOf(b)).gbps;
                     });
    std::vector<int> half(instance.agents(), 0);
    for (std::size_t k = 0; k < order.size(); ++k)
        half[order[k]] = k < order.size() / 2 ? 0 : 1;

    for (const auto &[a, b] : m.pairs())
        EXPECT_NE(half[a], half[b]);
}

TEST_F(PolicyTest, SmrMatchingIsStableAcrossThePartition)
{
    // SMR produces no blocking pair in which both agents would gain;
    // cross-partition stability is guaranteed by Gale-Shapley, and
    // within-partition pairs may still block (counted by Figure 10),
    // so check the matching exists and is perfect here.
    const auto instance = makeInstance(80, 13);
    Rng rng(3);
    StableMarriageRandomPolicy smr;
    const Matching m = smr.assign(instance, rng);
    EXPECT_TRUE(m.isPerfect());
}

TEST_F(PolicyTest, SrProducesFewerBlockingPairsThanGreedy)
{
    const auto instance = makeInstance(120, 17);
    Rng rng_a(4), rng_b(4);
    StableRoommatePolicy sr;
    GreedyPolicy gr;
    const Matching sr_m = sr.assign(instance, rng_a);
    const Matching gr_m = gr.assign(instance, rng_b);
    const auto d = oracle(instance);
    EXPECT_LT(countBlockingPairs(sr_m, d, 0.0),
              countBlockingPairs(gr_m, d, 0.0));
}

TEST_F(PolicyTest, ThresholdRespectsTolerance)
{
    const auto instance = makeInstance(100, 19, MixKind::BetaHigh);
    Rng rng(5);
    ThresholdPolicy th(0.10);
    const Matching m = th.assign(instance, rng);
    for (const auto &[a, b] : m.pairs()) {
        EXPECT_LT(instance.believedDisutility(a, b), 0.10 + 1e-9);
        EXPECT_LT(instance.believedDisutility(b, a), 0.10 + 1e-9);
    }
}

TEST_F(PolicyTest, ThresholdLeavesContentiousJobsAlone)
{
    // With a Beta-High mix and a tight 5% tolerance, many pairs
    // exceed the threshold, so some agents must run alone on extra
    // machines.
    const auto instance = makeInstance(100, 23, MixKind::BetaHigh);
    Rng rng(6);
    ThresholdPolicy th(0.05);
    const Matching m = th.assign(instance, rng);
    EXPECT_LT(m.pairCount(), 50u);
}

TEST_F(PolicyTest, ThresholdBadToleranceFatal)
{
    EXPECT_THROW(ThresholdPolicy(0.0), FatalError);
    EXPECT_THROW(ThresholdPolicy(-1.0), FatalError);
}

TEST_F(PolicyTest, MakePolicyRoundTrip)
{
    for (const char *name : {"GR", "CO", "SMP", "SMR", "SR", "TH"}) {
        const auto policy = makePolicy(name);
        EXPECT_EQ(policy->name(), name);
    }
    EXPECT_THROW(makePolicy("XX"), FatalError);
}

TEST_F(PolicyTest, FigurePoliciesOrderMatchesPaper)
{
    const auto policies = figurePolicies();
    ASSERT_EQ(policies.size(), 5u);
    EXPECT_EQ(policies[0]->name(), "GR");
    EXPECT_EQ(policies[1]->name(), "CO");
    EXPECT_EQ(policies[2]->name(), "SMP");
    EXPECT_EQ(policies[3]->name(), "SMR");
    EXPECT_EQ(policies[4]->name(), "SR");
}

TEST_F(PolicyTest, DeterministicGivenSameSeed)
{
    const auto instance = makeInstance(40, 29);
    for (const auto &policy : figurePolicies()) {
        Rng rng_a(31), rng_b(31);
        const Matching a = policy->assign(instance, rng_a);
        const Matching b = policy->assign(instance, rng_b);
        EXPECT_EQ(a.pairs(), b.pairs()) << policy->name();
    }
}

} // namespace
} // namespace cooper
