/**
 * @file
 * Equivalence tests for the incremental predictor: after any churn of
 * observations, IncrementalPredictor::predict() must be bit-identical
 * to a from-scratch ItemKnnPredictor over the same ratings matrix —
 * the warm start is a wall-clock optimization, never a result change.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cf/item_knn.hh"
#include "online/incremental.hh"
#include "util/rng.hh"

namespace cooper {
namespace {

bool
sameDense(const std::vector<std::vector<double>> &a,
          const std::vector<std::vector<double>> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t r = 0; r < a.size(); ++r) {
        if (a[r].size() != b[r].size())
            return false;
        if (!a[r].empty() &&
            std::memcmp(a[r].data(), b[r].data(),
                        a[r].size() * sizeof(double)) != 0)
            return false;
    }
    return true;
}

/** predict() == from-scratch predict of the same ratings, bitwise. */
void
expectMatchesColdStart(IncrementalPredictor &warm)
{
    const Prediction &inc = warm.predict();
    const ItemKnnPredictor cold(warm.config());
    const Prediction full = cold.predict(warm.ratings());
    EXPECT_TRUE(sameDense(inc.dense, full.dense));
    EXPECT_EQ(inc.iterations, full.iterations);
    EXPECT_EQ(inc.fallbackCells, full.fallbackCells);
}

/** Random churn: sparse batches of observes, checking after each. */
void
churnAndCheck(const ItemKnnConfig &config, std::uint64_t seed)
{
    constexpr std::size_t kItems = 12;
    constexpr std::size_t kBatches = 6;
    IncrementalPredictor warm(kItems, config);
    Rng rng(seed);

    // Seed enough cells that similarities have support.
    for (std::size_t i = 0; i < kItems; ++i)
        for (std::size_t j = 0; j < kItems; ++j)
            if (i == j || rng.uniform() < 0.4)
                warm.observe(i, j, rng.uniform());
    expectMatchesColdStart(warm);

    for (std::size_t batch = 0; batch < kBatches; ++batch) {
        const std::size_t writes = 1 + rng.uniformInt(4);
        for (std::size_t w = 0; w < writes; ++w)
            warm.observe(rng.uniformInt(kItems), rng.uniformInt(kItems),
                         rng.uniform());
        expectMatchesColdStart(warm);
    }
}

TEST(IncrementalPredictor, MatchesColdStartDefaultConfig)
{
    churnAndCheck(ItemKnnConfig{}, 1);
}

TEST(IncrementalPredictor, MatchesColdStartAcrossSimilarities)
{
    for (const Similarity sim :
         {Similarity::Cosine, Similarity::AdjustedCosine,
          Similarity::Pearson}) {
        ItemKnnConfig config;
        config.similarity = sim;
        churnAndCheck(config, 2);
    }
}

TEST(IncrementalPredictor, MatchesColdStartAcrossNeighborCaps)
{
    for (const std::size_t neighbors : {0u, 4u}) {
        ItemKnnConfig config;
        config.neighbors = neighbors;
        churnAndCheck(config, 3);
    }
}

TEST(IncrementalPredictor, MatchesColdStartAcrossIterations)
{
    for (const std::size_t iterations : {1u, 2u}) {
        ItemKnnConfig config;
        config.iterations = iterations;
        churnAndCheck(config, 4);
    }
}

TEST(IncrementalPredictor, MatchesColdStartWithoutBidirectional)
{
    ItemKnnConfig config;
    config.bidirectional = false;
    churnAndCheck(config, 5);
}

TEST(IncrementalPredictor, MatchesColdStartAcrossThreadCounts)
{
    for (const std::size_t threads : {1u, 2u, 8u}) {
        ItemKnnConfig config;
        config.threads = threads;
        churnAndCheck(config, 6);
    }
}

TEST(IncrementalPredictor, SecondPredictIsACacheHit)
{
    IncrementalPredictor warm(6);
    Rng rng(7);
    for (std::size_t i = 0; i < 6; ++i)
        for (std::size_t j = 0; j < 6; ++j)
            warm.observe(i, j, rng.uniform());

    warm.predict();
    EXPECT_FALSE(warm.lastStats().cacheHit);

    warm.predict();
    EXPECT_TRUE(warm.lastStats().cacheHit);
    EXPECT_EQ(warm.lastStats().recomputedPairs, 0u);
}

TEST(IncrementalPredictor, RewritingTheSameValueKeepsTheCache)
{
    IncrementalPredictor warm(6);
    Rng rng(8);
    for (std::size_t i = 0; i < 6; ++i)
        for (std::size_t j = 0; j < 6; ++j)
            warm.observe(i, j, rng.uniform());
    warm.predict();

    warm.observe(2, 3, warm.ratings().at(2, 3));
    warm.predict();
    EXPECT_TRUE(warm.lastStats().cacheHit);
}

TEST(IncrementalPredictor, NewValueInvalidatesTheCache)
{
    IncrementalPredictor warm(6);
    Rng rng(9);
    for (std::size_t i = 0; i < 6; ++i)
        for (std::size_t j = 0; j < 6; ++j)
            warm.observe(i, j, rng.uniform());
    warm.predict();

    warm.observe(2, 3, warm.ratings().at(2, 3) + 0.25);
    warm.predict();
    EXPECT_FALSE(warm.lastStats().cacheHit);
    EXPECT_TRUE(warm.lastStats().incremental);
    EXPECT_GT(warm.lastStats().recomputedPairs, 0u);
    expectMatchesColdStart(warm);
}

TEST(IncrementalPredictor, IncrementalRecomputesFewerPairsThanCold)
{
    // Raw cosine: only pairs touching a dirty column recompute. (The
    // adjusted-cosine centering also dirties every pair co-rated in a
    // dirty row, which on a dense matrix is all of them.)
    constexpr std::size_t kItems = 16;
    ItemKnnConfig config;
    config.similarity = Similarity::Cosine;
    IncrementalPredictor warm(kItems, config);
    Rng rng(10);
    for (std::size_t i = 0; i < kItems; ++i)
        for (std::size_t j = 0; j < kItems; ++j)
            warm.observe(i, j, rng.uniform());

    warm.predict();
    const std::size_t cold_pairs = warm.lastStats().recomputedPairs;

    warm.observe(3, 5, rng.uniform());
    warm.predict();
    EXPECT_TRUE(warm.lastStats().incremental);
    EXPECT_LT(warm.lastStats().recomputedPairs, cold_pairs);
    expectMatchesColdStart(warm);
}

TEST(IncrementalPredictor, ResetMatchesColdStart)
{
    IncrementalPredictor warm(8);
    Rng rng(11);
    for (std::size_t i = 0; i < 8; ++i)
        for (std::size_t j = 0; j < 8; ++j)
            warm.observe(i, j, rng.uniform());
    warm.predict();

    SparseMatrix replacement(8, 8);
    for (std::size_t i = 0; i < 8; ++i)
        for (std::size_t j = 0; j < 8; ++j)
            if (i == j || rng.uniform() < 0.5)
                replacement.set(i, j, rng.uniform());

    warm.reset(replacement);
    EXPECT_FALSE(warm.predict().dense.empty());
    EXPECT_FALSE(warm.lastStats().cacheHit);
    expectMatchesColdStart(warm);
}

} // namespace
} // namespace cooper
