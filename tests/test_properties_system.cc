/**
 * @file
 * System-level parameterized property tests: the scheduler, group
 * colocation, and serialization hold their invariants across sweeps
 * of policies, sizes, loads, and seeds.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <tuple>

#include "core/groups.hh"
#include "core/scheduler.hh"
#include "io/serialize.hh"
#include "util/rng.hh"
#include "workload/population.hh"

namespace cooper {
namespace {

// ---------------------------------------------------------------------
// Property: for every policy and load level, the scheduler conserves
// jobs, respects arrival order causality, and keeps utilization in
// [0, 1].
// ---------------------------------------------------------------------

using SchedCase = std::tuple<std::string, double, int>;

class SchedulerInvariants : public ::testing::TestWithParam<SchedCase>
{
  protected:
    Catalog catalog_ = Catalog::paperTableI();
    InterferenceModel model_{catalog_};
};

TEST_P(SchedulerInvariants, ConservationAndCausality)
{
    const auto &[policy, rate, seed] = GetParam();
    SchedulerConfig config;
    config.policy = policy;
    config.arrivalRatePerSec = rate;
    config.machines = 8;
    config.epochSec = 300.0;

    EpochScheduler scheduler(catalog_, model_, config,
                             static_cast<std::uint64_t>(seed));
    // Keep the overloaded sweep cheap: the queue (and the matching
    // cost of quadratic policies) grows with the horizon.
    const double horizon = rate > 0.1 ? 4000.0 : 8000.0;
    const ScheduleTrace trace = scheduler.run(horizon, 4000.0);

    EXPECT_GE(trace.utilization, 0.0);
    EXPECT_LE(trace.utilization, 1.0);

    std::size_t arrivals = 0, dispatched = 0;
    for (const auto &epoch : trace.epochs) {
        arrivals += epoch.arrivals;
        dispatched += epoch.dispatched;
        EXPECT_LE(epoch.freeMachines, config.machines);
    }
    EXPECT_EQ(arrivals, trace.jobs.size());
    EXPECT_EQ(dispatched + trace.epochs.back().queued,
              trace.jobs.size());

    for (const auto &job : trace.jobs) {
        if (!job.started())
            continue;
        EXPECT_GE(job.startSec, job.arrivalSec);
        EXPECT_GT(job.endSec, job.startSec);
        EXPECT_LT(job.machine, config.machines);
        EXPECT_GE(job.penalty, 0.0);
        EXPECT_LT(job.penalty, 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SchedulerSweep, SchedulerInvariants,
    ::testing::Combine(::testing::Values("GR", "CO", "SMR", "SR"),
                       ::testing::Values(0.02, 0.15),
                       ::testing::Values(1, 17)));

// ---------------------------------------------------------------------
// Property: grouping schemes always partition the population, and
// every member's penalty is a valid disutility.
// ---------------------------------------------------------------------

using GroupCase = std::tuple<int, std::size_t, int>;

class GroupingInvariants : public ::testing::TestWithParam<GroupCase>
{
  protected:
    Catalog catalog_ = Catalog::paperTableI();
    InterferenceModel model_{catalog_};
};

TEST_P(GroupingInvariants, PartitionAndPenaltyBounds)
{
    const auto &[scheme, agents, seed] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed));
    auto population =
        samplePopulation(catalog_, agents, MixKind::Uniform, rng);
    auto instance = ColocationInstance::oracular(
        catalog_, std::move(population), model_);

    Rng scheme_rng(static_cast<std::uint64_t>(seed) + 100);
    Grouping grouping;
    switch (scheme) {
      case 0:
        grouping = hierarchicalGroups(instance, 4, scheme_rng);
        break;
      case 1:
        grouping = greedyGroups(instance, 4, scheme_rng);
        break;
      default:
        grouping = randomGroups(instance, 4, scheme_rng);
        break;
    }
    EXPECT_TRUE(grouping.isPartitionOf(agents));
    const auto penalties =
        trueGroupPenalties(instance, model_, grouping);
    for (double p : penalties) {
        EXPECT_GE(p, 0.0);
        EXPECT_LT(p, 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    GroupingSweep, GroupingInvariants,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(std::size_t(16),
                                         std::size_t(100),
                                         std::size_t(101)),
                       ::testing::Values(3, 7)));

// ---------------------------------------------------------------------
// Property: profiles and matchings of any shape round-trip through
// the serialization formats bit-for-bit.
// ---------------------------------------------------------------------

class SerializationRoundTrip : public ::testing::TestWithParam<int>
{};

TEST_P(SerializationRoundTrip, RandomArtifactsSurvive)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const std::size_t rows = 1 + rng.uniformInt(std::uint64_t(30));
    const std::size_t cols = 1 + rng.uniformInt(std::uint64_t(30));
    SparseMatrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            if (rng.bernoulli(0.3))
                m.set(r, c, rng.uniform(-0.05, 0.5));

    std::stringstream buffer;
    writeProfiles(buffer, m);
    const SparseMatrix back = readProfiles(buffer);
    ASSERT_EQ(back.rows(), rows);
    ASSERT_EQ(back.cols(), cols);
    ASSERT_EQ(back.knownCount(), m.knownCount());
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            ASSERT_EQ(back.known(r, c), m.known(r, c));
            if (m.known(r, c)) {
                ASSERT_DOUBLE_EQ(back.at(r, c), m.at(r, c));
            }
        }
    }

    const std::size_t n = 2 + 2 * rng.uniformInt(std::uint64_t(20));
    Matching matching(n);
    auto perm = rng.permutation(n);
    for (std::size_t k = 0; k + 1 < n; k += 2)
        if (rng.bernoulli(0.8))
            matching.pair(perm[k], perm[k + 1]);

    std::stringstream mbuf;
    writeMatching(mbuf, matching);
    const Matching mback = readMatching(mbuf);
    EXPECT_EQ(mback.pairs(), matching.pairs());
}

INSTANTIATE_TEST_SUITE_P(SerializationSweep, SerializationRoundTrip,
                         ::testing::Range(1, 9));

} // namespace
} // namespace cooper
