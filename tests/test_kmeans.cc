/**
 * @file
 * Unit tests for k-means clustering.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "stats/kmeans.hh"
#include "util/error.hh"

namespace cooper {
namespace {

TEST(KMeans, SeparatesObviousClusters)
{
    std::vector<std::vector<double>> points;
    for (int i = 0; i < 10; ++i)
        points.push_back({0.0 + 0.01 * i, 0.0});
    for (int i = 0; i < 10; ++i)
        points.push_back({10.0 + 0.01 * i, 10.0});
    Rng rng(1);
    const KMeansResult result = kmeans(points, 2, rng);
    // Every point in the first blob shares a label, distinct from
    // the second blob's.
    for (int i = 1; i < 10; ++i)
        EXPECT_EQ(result.assignment[i], result.assignment[0]);
    for (int i = 11; i < 20; ++i)
        EXPECT_EQ(result.assignment[static_cast<std::size_t>(i)],
                  result.assignment[10]);
    EXPECT_NE(result.assignment[0], result.assignment[10]);
}

TEST(KMeans, KEqualsNPutsEachPointAlone)
{
    std::vector<std::vector<double>> points{
        {0.0}, {1.0}, {2.0}, {3.0}};
    Rng rng(2);
    const KMeansResult result = kmeans(points, 4, rng);
    std::set<std::size_t> labels(result.assignment.begin(),
                                 result.assignment.end());
    EXPECT_EQ(labels.size(), 4u);
    EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeans, SingleClusterCentersOnMean)
{
    std::vector<std::vector<double>> points{{0.0, 0.0}, {2.0, 4.0}};
    Rng rng(3);
    const KMeansResult result = kmeans(points, 1, rng);
    EXPECT_NEAR(result.centers[0][0], 1.0, 1e-12);
    EXPECT_NEAR(result.centers[0][1], 2.0, 1e-12);
}

TEST(KMeans, InertiaNonIncreasingWithMoreClusters)
{
    std::vector<std::vector<double>> points;
    Rng gen(4);
    for (int i = 0; i < 50; ++i)
        points.push_back({gen.uniform(), gen.uniform()});
    Rng rng(5);
    double prev = std::numeric_limits<double>::infinity();
    for (std::size_t k : {1u, 2u, 4u, 8u}) {
        const KMeansResult result = kmeans(points, k, rng);
        EXPECT_LE(result.inertia, prev * 1.05) << "k=" << k;
        prev = result.inertia;
    }
}

TEST(KMeans, DuplicatePointsHandled)
{
    std::vector<std::vector<double>> points(6, {1.0, 1.0});
    Rng rng(6);
    const KMeansResult result = kmeans(points, 3, rng);
    EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeans, ZeroIterationsStillAssignsToTheSeededCenters)
{
    // Regression: with max_iterations == 0 the Lloyd loop never runs,
    // and the assignment must still be nearest-seeded-center — not
    // the all-zero placeholder, which would silently dump every point
    // into cluster 0 (and every job type into shard 0).
    std::vector<std::vector<double>> points;
    for (int i = 0; i < 8; ++i)
        points.push_back({0.0 + 0.01 * i});
    for (int i = 0; i < 8; ++i)
        points.push_back({100.0 + 0.01 * i});

    Rng rng(11);
    const KMeansResult result = kmeans(points, 2, rng, 0);
    EXPECT_EQ(result.iterations, 0u);

    std::set<std::size_t> labels(result.assignment.begin(),
                                 result.assignment.end());
    EXPECT_EQ(labels.size(), 2u);
    for (std::size_t i = 0; i < result.assignment.size(); ++i) {
        EXPECT_LT(result.assignment[i], 2u);
        // Blob membership must match: k-means++ cannot seed both
        // centers in one blob when the other is 100 units away.
        EXPECT_EQ(result.assignment[i], result.assignment[i < 8 ? 0 : 8]);
    }
    EXPECT_NE(result.assignment[0], result.assignment[8]);
}

TEST(KMeans, DuplicateFeatureVectorsAssignDeterministically)
{
    // All-duplicate inputs leave every center identical; ties must
    // break the same way on every run with the same seed.
    std::vector<std::vector<double>> points(6, {2.5, 2.5});
    Rng first_rng(12);
    Rng second_rng(12);
    const KMeansResult first = kmeans(points, 3, first_rng);
    const KMeansResult second = kmeans(points, 3, second_rng);
    EXPECT_EQ(first.assignment, second.assignment);
    EXPECT_NEAR(first.inertia, 0.0, 1e-12);
    for (const std::size_t label : first.assignment)
        EXPECT_LT(label, 3u);
}

TEST(KMeans, SurvivesEmptyClusters)
{
    // Five coincident points and one outlier with k = 3: at most two
    // centers can own points, so at least one cluster is empty. The
    // result must stay well-formed (valid labels, finite centers) and
    // deterministic.
    std::vector<std::vector<double>> points(5, {0.0, 0.0});
    points.push_back({10.0, 10.0});

    Rng rng(13);
    const KMeansResult result = kmeans(points, 3, rng, 50);
    ASSERT_EQ(result.assignment.size(), points.size());
    for (const std::size_t label : result.assignment)
        EXPECT_LT(label, 3u);
    ASSERT_EQ(result.centers.size(), 3u);
    for (const auto &center : result.centers)
        for (const double coordinate : center)
            EXPECT_TRUE(std::isfinite(coordinate));

    Rng replay(13);
    EXPECT_EQ(kmeans(points, 3, replay, 50).assignment,
              result.assignment);
}

TEST(KMeans, InputValidation)
{
    Rng rng(7);
    std::vector<std::vector<double>> empty;
    EXPECT_THROW(kmeans(empty, 1, rng), FatalError);
    std::vector<std::vector<double>> one{{1.0}};
    EXPECT_THROW(kmeans(one, 0, rng), FatalError);
    EXPECT_THROW(kmeans(one, 2, rng), FatalError);
    std::vector<std::vector<double>> ragged{{1.0}, {1.0, 2.0}};
    EXPECT_THROW(kmeans(ragged, 1, rng), FatalError);
}

TEST(NormalizeFeatures, MapsToUnitRange)
{
    std::vector<std::vector<double>> points{{0.0, 5.0}, {10.0, 5.0},
                                            {5.0, 5.0}};
    const auto norm = normalizeFeatures(points);
    EXPECT_DOUBLE_EQ(norm[0][0], 0.0);
    EXPECT_DOUBLE_EQ(norm[1][0], 1.0);
    EXPECT_DOUBLE_EQ(norm[2][0], 0.5);
    // Constant feature maps to zero everywhere.
    for (const auto &p : norm)
        EXPECT_DOUBLE_EQ(p[1], 0.0);
}

TEST(NormalizeFeatures, EmptyInput)
{
    EXPECT_TRUE(normalizeFeatures({}).empty());
}

} // namespace
} // namespace cooper
