/**
 * @file
 * Unit tests for command-line flag parsing.
 */

#include <gtest/gtest.h>

#include "util/cli.hh"
#include "util/error.hh"

namespace cooper {
namespace {

TEST(CliFlags, DefaultsApply)
{
    CliFlags flags;
    flags.declare("agents", "1000", "population size");
    const char *argv[] = {"prog"};
    EXPECT_TRUE(flags.parse(1, argv));
    EXPECT_EQ(flags.getInt("agents"), 1000);
}

TEST(CliFlags, EqualsSyntax)
{
    CliFlags flags;
    flags.declare("agents", "1000", "population size");
    const char *argv[] = {"prog", "--agents=64"};
    EXPECT_TRUE(flags.parse(2, argv));
    EXPECT_EQ(flags.getInt("agents"), 64);
}

TEST(CliFlags, SpaceSyntax)
{
    CliFlags flags;
    flags.declare("ratio", "0.25", "sampling ratio");
    const char *argv[] = {"prog", "--ratio", "0.5"};
    EXPECT_TRUE(flags.parse(3, argv));
    EXPECT_DOUBLE_EQ(flags.getDouble("ratio"), 0.5);
}

TEST(CliFlags, BareBooleanFlag)
{
    CliFlags flags;
    flags.declare("verbose", "false", "chatty output");
    const char *argv[] = {"prog", "--verbose"};
    EXPECT_TRUE(flags.parse(2, argv));
    EXPECT_TRUE(flags.getBool("verbose"));
}

TEST(CliFlags, UnknownFlagFatal)
{
    CliFlags flags;
    flags.declare("x", "1", "x");
    const char *argv[] = {"prog", "--y=2"};
    EXPECT_THROW(flags.parse(2, argv), FatalError);
}

TEST(CliFlags, MalformedValueFatal)
{
    CliFlags flags;
    flags.declare("n", "1", "n");
    const char *argv[] = {"prog", "--n=abc"};
    EXPECT_TRUE(flags.parse(2, argv));
    EXPECT_THROW(flags.getInt("n"), FatalError);
}

TEST(CliFlags, HelpShortCircuits)
{
    CliFlags flags;
    flags.declare("n", "1", "n");
    const char *argv[] = {"prog", "--help"};
    EXPECT_FALSE(flags.parse(2, argv));
}

TEST(CliFlags, DuplicateDeclarationFatal)
{
    CliFlags flags;
    flags.declare("n", "1", "n");
    EXPECT_THROW(flags.declare("n", "2", "again"), FatalError);
}

TEST(CliFlags, MissingValueFatal)
{
    CliFlags flags;
    flags.declare("n", "1", "n");
    const char *argv[] = {"prog", "--n"};
    EXPECT_THROW(flags.parse(2, argv), FatalError);
}

TEST(CliFlags, UsageListsFlags)
{
    CliFlags flags;
    flags.declare("agents", "1000", "population size");
    const std::string usage = flags.usage("prog");
    EXPECT_NE(usage.find("--agents"), std::string::npos);
    EXPECT_NE(usage.find("population size"), std::string::npos);
}

} // namespace
} // namespace cooper
