/**
 * @file
 * Unit tests for command-line flag parsing and subcommand dispatch:
 * unknown flags and subcommands are hard failures that name the
 * offender, never silent no-ops.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "online/driver.hh"
#include "util/cli.hh"
#include "util/error.hh"

namespace cooper {
namespace {

TEST(CliFlags, DefaultsApply)
{
    CliFlags flags;
    flags.declare("agents", "1000", "population size");
    const char *argv[] = {"prog"};
    EXPECT_TRUE(flags.parse(1, argv));
    EXPECT_EQ(flags.getInt("agents"), 1000);
}

TEST(CliFlags, EqualsSyntax)
{
    CliFlags flags;
    flags.declare("agents", "1000", "population size");
    const char *argv[] = {"prog", "--agents=64"};
    EXPECT_TRUE(flags.parse(2, argv));
    EXPECT_EQ(flags.getInt("agents"), 64);
}

TEST(CliFlags, SpaceSyntax)
{
    CliFlags flags;
    flags.declare("ratio", "0.25", "sampling ratio");
    const char *argv[] = {"prog", "--ratio", "0.5"};
    EXPECT_TRUE(flags.parse(3, argv));
    EXPECT_DOUBLE_EQ(flags.getDouble("ratio"), 0.5);
}

TEST(CliFlags, BareBooleanFlag)
{
    CliFlags flags;
    flags.declare("verbose", "false", "chatty output");
    const char *argv[] = {"prog", "--verbose"};
    EXPECT_TRUE(flags.parse(2, argv));
    EXPECT_TRUE(flags.getBool("verbose"));
}

TEST(CliFlags, UnknownFlagFatal)
{
    CliFlags flags;
    flags.declare("x", "1", "x");
    const char *argv[] = {"prog", "--y=2"};
    EXPECT_THROW(flags.parse(2, argv), FatalError);
}

TEST(CliFlags, MalformedValueFatal)
{
    CliFlags flags;
    flags.declare("n", "1", "n");
    const char *argv[] = {"prog", "--n=abc"};
    EXPECT_TRUE(flags.parse(2, argv));
    EXPECT_THROW(flags.getInt("n"), FatalError);
}

TEST(CliFlags, HelpShortCircuits)
{
    CliFlags flags;
    flags.declare("n", "1", "n");
    const char *argv[] = {"prog", "--help"};
    EXPECT_FALSE(flags.parse(2, argv));
}

TEST(CliFlags, DuplicateDeclarationFatal)
{
    CliFlags flags;
    flags.declare("n", "1", "n");
    EXPECT_THROW(flags.declare("n", "2", "again"), FatalError);
}

TEST(CliFlags, MissingValueFatal)
{
    CliFlags flags;
    flags.declare("n", "1", "n");
    const char *argv[] = {"prog", "--n"};
    EXPECT_THROW(flags.parse(2, argv), FatalError);
}

TEST(CliFlags, UsageListsFlags)
{
    CliFlags flags;
    flags.declare("agents", "1000", "population size");
    const std::string usage = flags.usage("prog");
    EXPECT_NE(usage.find("--agents"), std::string::npos);
    EXPECT_NE(usage.find("population size"), std::string::npos);
}

TEST(CliCommands, DispatchesToTheNamedSubcommand)
{
    CliCommands commands("tool");
    int seen_argc = 0;
    std::string seen_first;
    commands.declare("go", [&](int argc, const char *const *argv) {
        seen_argc = argc;
        seen_first = argv[0];
        return 0;
    });

    const char *argv[] = {"tool", "go", "--n=1"};
    std::ostringstream out, err;
    EXPECT_EQ(commands.run(3, argv, out, err), 0);
    // The handler sees argv shifted so CliFlags parses its own flags.
    EXPECT_EQ(seen_argc, 2);
    EXPECT_EQ(seen_first, "go");
}

TEST(CliCommands, UnknownSubcommandNamesTheOffenderAndFails)
{
    CliCommands commands("tool");
    commands.declare("go",
                     [](int, const char *const *) { return 0; });
    commands.setUsageText("Usage: tool <go> [flags]\n");

    const char *argv[] = {"tool", "frobnicate"};
    std::ostringstream out, err;
    EXPECT_EQ(commands.run(2, argv, out, err), 2);
    EXPECT_NE(err.str().find("unknown subcommand 'frobnicate'"),
              std::string::npos);
    EXPECT_NE(err.str().find("Usage: tool"), std::string::npos);
}

TEST(CliCommands, NoArgumentsPrintsUsageAndFails)
{
    CliCommands commands("tool");
    commands.declare("go",
                     [](int, const char *const *) { return 0; });
    commands.setUsageText("Usage: tool <go> [flags]\n");

    const char *argv[] = {"tool"};
    std::ostringstream out, err;
    EXPECT_EQ(commands.run(1, argv, out, err), 2);
    EXPECT_NE(out.str().find("Usage: tool"), std::string::npos);
}

TEST(CliCommands, BareFlagsRouteToTheDefaultSubcommand)
{
    CliCommands commands("tool");
    int seen_argc = 0;
    std::string seen_flag;
    commands.declare("go", [&](int argc, const char *const *argv) {
        seen_argc = argc;
        seen_flag = argv[1];
        return 0;
    });
    commands.routeBareFlagsTo("go");

    // Legacy spelling: flags with no subcommand keep argv intact.
    const char *argv[] = {"tool", "--n=1"};
    std::ostringstream out, err;
    EXPECT_EQ(commands.run(2, argv, out, err), 0);
    EXPECT_EQ(seen_argc, 2);
    EXPECT_EQ(seen_flag, "--n=1");
}

TEST(CliCommands, UnknownFlagFailureNamesTheSubcommand)
{
    // A handler whose CliFlags rejects an unrecognized flag must
    // surface that as a hard dispatch failure with a --help hint, not
    // a crash and not a silently ignored argument.
    CliCommands commands("tool");
    commands.declare("go", [](int argc, const char *const *argv) {
        CliFlags flags;
        flags.declare("n", "1", "n");
        flags.parse(argc, argv);
        return 0;
    });

    const char *argv[] = {"tool", "go", "--bogus=1"};
    std::ostringstream out, err;
    EXPECT_EQ(commands.run(3, argv, out, err), 2);
    EXPECT_NE(err.str().find("tool go:"), std::string::npos);
    EXPECT_NE(err.str().find("unknown flag --bogus"),
              std::string::npos);
    EXPECT_NE(err.str().find("tool go --help"), std::string::npos);
}

TEST(CliCommands, HandlerExitCodePassesThrough)
{
    CliCommands commands("tool");
    commands.declare("go",
                     [](int, const char *const *) { return 3; });
    const char *argv[] = {"tool", "go"};
    std::ostringstream out, err;
    EXPECT_EQ(commands.run(2, argv, out, err), 3);
}

TEST(CliCommands, DuplicateSubcommandFatal)
{
    CliCommands commands("tool");
    commands.declare("go",
                     [](int, const char *const *) { return 0; });
    EXPECT_THROW(commands.declare(
                     "go", [](int, const char *const *) { return 0; }),
                 FatalError);
}

TEST(CliCommands, BareFlagTargetMustBeDeclared)
{
    CliCommands commands("tool");
    EXPECT_THROW(commands.routeBareFlagsTo("missing"), FatalError);
}

// `cooper_cli serve` flag validation: bad --policy / --group-size /
// --shards combinations must hard-fail before any trace is replayed,
// naming the offender.

TEST(CliCommands, ServeRejectsUnknownPolicy)
{
    EXPECT_THROW(validateServeOptions("SRX", 2, 1), FatalError);
    EXPECT_THROW(validateServeOptions("", 2, 1), FatalError);
    EXPECT_THROW(validateServeOptions("Coalition", 2, 1), FatalError);
    for (const char *policy :
         {"GR", "CO", "SMP", "SMR", "SR", "TH", "coalition"})
        EXPECT_NO_THROW(validateServeOptions(policy, 2, 1));
}

TEST(CliCommands, ServeRejectsGroupSizeOutOfRange)
{
    EXPECT_THROW(validateServeOptions("coalition", 0, 1), FatalError);
    EXPECT_THROW(validateServeOptions("coalition", 1, 1), FatalError);
    EXPECT_THROW(validateServeOptions("coalition", 21, 1), FatalError);
    EXPECT_NO_THROW(validateServeOptions("coalition", 20, 1));
    // The pairwise policies ignore --group-size entirely.
    EXPECT_NO_THROW(validateServeOptions("SR", 0, 1));
}

TEST(CliCommands, ServeRejectsCoalitionWithShards)
{
    EXPECT_THROW(validateServeOptions("coalition", 3, 2), FatalError);
    EXPECT_NO_THROW(validateServeOptions("coalition", 3, 1));
    EXPECT_NO_THROW(validateServeOptions("SR", 2, 4));
}

TEST(CliCommands, ServeGroupSizeMustBeNumeric)
{
    // The CLI reads --group-size through CliFlags::getInt, which
    // rejects non-numeric values before validateServeOptions runs.
    CliFlags flags;
    flags.declare("group-size", "2", "jobs per CMP");
    const char *argv[] = {"prog", "--group-size", "three"};
    EXPECT_TRUE(flags.parse(3, argv));
    EXPECT_THROW(flags.getInt("group-size"), FatalError);
}

} // namespace
} // namespace cooper
