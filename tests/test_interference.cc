/**
 * @file
 * Unit tests for the interference (penalty) model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/interference.hh"
#include "util/error.hh"

namespace cooper {
namespace {

class InterferenceTest : public ::testing::Test
{
  protected:
    Catalog catalog_ = Catalog::paperTableI();
    InterferenceModel model_{catalog_};

    JobTypeId id(const std::string &name) const
    {
        return catalog_.jobByName(name).id;
    }
};

TEST_F(InterferenceTest, PenaltiesInUnitRange)
{
    for (JobTypeId i = 0; i < catalog_.size(); ++i) {
        for (JobTypeId j = 0; j < catalog_.size(); ++j) {
            const double d = model_.penalty(i, j);
            EXPECT_GE(d, 0.0) << i << " vs " << j;
            EXPECT_LT(d, 1.0) << i << " vs " << j;
        }
    }
}

TEST_F(InterferenceTest, ComputePairsBarelyInterfere)
{
    // Two tiny-footprint, tiny-bandwidth jobs should not hurt each
    // other measurably.
    const double d = model_.penalty(id("swaptions"), id("vips"));
    EXPECT_LT(d, 0.01);
}

TEST_F(InterferenceTest, ContentiousPairsHurt)
{
    const double heavy =
        model_.penalty(id("correlation"), id("naive"));
    const double light = model_.penalty(id("correlation"), id("vips"));
    EXPECT_GT(heavy, 10.0 * std::max(light, 1e-6));
    EXPECT_GT(heavy, 0.08);
}

TEST_F(InterferenceTest, PenaltyGrowsWithCoRunnerBandwidth)
{
    // Fix the victim, sweep co-runners of increasing bandwidth with
    // comparable cache footprints: penalty should trend upward.
    const JobTypeId victim = id("svm");
    const double with_kmeans = model_.penalty(victim, id("kmeans"));
    const double with_fp = model_.penalty(victim, id("fpgrowth"));
    const double with_corr = model_.penalty(victim, id("correlation"));
    EXPECT_LT(with_kmeans, with_fp);
    EXPECT_LT(with_fp, with_corr);
}

TEST_F(InterferenceTest, DedupSuffersFromCachePressure)
{
    // dedup is barely bandwidth-hungry but highly cache-sensitive;
    // a big-footprint co-runner must hurt it far more than a
    // small-footprint one of comparable bandwidth.
    const double with_big = model_.penalty(id("dedup"), id("naive"));
    const double with_small = model_.penalty(id("dedup"), id("kmeans"));
    EXPECT_GT(with_big, 4.0 * std::max(with_small, 1e-6));
}

TEST_F(InterferenceTest, InterferenceIsDirectional)
{
    // dedup suffers from correlation far more than vice versa.
    const double d_dedup = model_.penalty(id("dedup"), id("correlation"));
    const double d_corr = model_.penalty(id("correlation"), id("dedup"));
    EXPECT_GT(d_dedup, d_corr);
}

TEST_F(InterferenceTest, CacheOverflowZeroWhenFits)
{
    EXPECT_DOUBLE_EQ(
        model_.cacheOverflow(id("swaptions"), id("vips")), 0.0);
    EXPECT_GT(model_.cacheOverflow(id("dedup"), id("canneal")), 0.0);
}

TEST_F(InterferenceTest, BandwidthPressureMonotoneInCoRunner)
{
    const JobTypeId self = id("svm");
    EXPECT_LT(model_.bandwidthPressure(self, id("vips")),
              model_.bandwidthPressure(self, id("streamc")));
}

TEST_F(InterferenceTest, MatrixMatchesPointQueries)
{
    const PenaltyMatrix m = model_.penaltyMatrix();
    EXPECT_EQ(m.size(), catalog_.size());
    for (JobTypeId i = 0; i < catalog_.size(); i += 3)
        for (JobTypeId j = 0; j < catalog_.size(); j += 3)
            EXPECT_DOUBLE_EQ(m(i, j), model_.penalty(i, j));
}

TEST_F(InterferenceTest, ColocatedRuntimeInflatedByPenalty)
{
    const JobTypeId a = id("correlation");
    const JobTypeId b = id("naive");
    const double t = model_.colocatedSeconds(a, b);
    const double alone = catalog_.job(a).standaloneSec;
    EXPECT_GT(t, alone);
    EXPECT_NEAR(t, alone / (1.0 - model_.penalty(a, b)), 1e-9);
}

TEST_F(InterferenceTest, DeterministicAcrossInstances)
{
    InterferenceModel other(catalog_);
    for (JobTypeId i = 0; i < catalog_.size(); ++i)
        for (JobTypeId j = 0; j < catalog_.size(); ++j)
            EXPECT_DOUBLE_EQ(model_.penalty(i, j), other.penalty(i, j));
}

TEST_F(InterferenceTest, IdiosyncrasyCanBeDisabled)
{
    ServerConfig config;
    config.idiosyncrasy = 0.0;
    InterferenceModel plain(catalog_, config);
    // Without idiosyncrasy, same-attribute jobs see identical
    // penalties from a given co-runner class; svm and linear have
    // identical calibrated attributes except bandwidth (14.59 vs
    // 14.66), so their penalties against a fixed co-runner are within
    // a whisker.
    const double d1 = plain.penalty(id("svm"), id("correlation"));
    const double d2 = plain.penalty(id("linear"), id("correlation"));
    EXPECT_NEAR(d1, d2, 0.01);
}

TEST_F(InterferenceTest, BadConfigRejected)
{
    ServerConfig config;
    config.llcMB = 0.0;
    EXPECT_THROW(InterferenceModel(catalog_, config), FatalError);
}

// Group-penalty properties the coalition subsystem builds on.

TEST_F(InterferenceTest, GroupPenaltyPairCaseMatchesPairwisePenalty)
{
    for (JobTypeId i = 0; i < catalog_.size(); ++i)
        for (JobTypeId j = 0; j < catalog_.size(); ++j) {
            const JobTypeId others[] = {j};
            EXPECT_DOUBLE_EQ(model_.groupPenalty(i, others),
                             model_.penalty(i, j))
                << i << " vs " << j;
        }
}

TEST_F(InterferenceTest, GroupPenaltyInvariantUnderCoRunnerOrder)
{
    const JobTypeId a = id("kmeans");
    const JobTypeId b = id("dedup");
    const JobTypeId c = id("correlation");
    const JobTypeId self = id("svm");
    const JobTypeId perms[][3] = {{a, b, c}, {a, c, b}, {b, a, c},
                                  {b, c, a}, {c, a, b}, {c, b, a}};
    const double reference = model_.groupPenalty(self, perms[0]);
    for (const auto &perm : perms)
        EXPECT_DOUBLE_EQ(model_.groupPenalty(self, perm), reference);
}

TEST_F(InterferenceTest, GroupPenaltyMonotoneInGroupSize)
{
    // Adding a co-runner can only add pressure. Idiosyncrasy off so
    // the property is exact rather than up to the +-15% jitter.
    ServerConfig config;
    config.idiosyncrasy = 0.0;
    InterferenceModel plain(catalog_, config);
    for (JobTypeId self = 0; self < catalog_.size(); ++self) {
        std::vector<JobTypeId> others;
        double previous = 0.0;
        for (const char *name :
             {"correlation", "kmeans", "dedup", "streamc"}) {
            others.push_back(id(name));
            const double grown = plain.groupPenalty(self, others);
            EXPECT_GE(grown, previous)
                << "job " << self << " with " << others.size()
                << " co-runners";
            previous = grown;
        }
    }
}

} // namespace
} // namespace cooper
