/**
 * @file
 * Unit tests for population sampling and workload mixes.
 */

#include <gtest/gtest.h>

#include <map>

#include "util/error.hh"
#include "workload/population.hh"

namespace cooper {
namespace {

class PopulationTest : public ::testing::Test
{
  protected:
    Catalog catalog_ = Catalog::paperTableI();
};

TEST_F(PopulationTest, SampleHasRequestedSize)
{
    Rng rng(1);
    const auto pop = samplePopulation(catalog_, 500, MixKind::Uniform, rng);
    EXPECT_EQ(pop.size(), 500u);
    for (JobTypeId t : pop)
        EXPECT_LT(t, catalog_.size());
}

TEST_F(PopulationTest, EmptyRequestFatal)
{
    Rng rng(1);
    EXPECT_THROW(samplePopulation(catalog_, 0, MixKind::Uniform, rng),
                 FatalError);
}

TEST_F(PopulationTest, UniformCoversAllTypes)
{
    Rng rng(2);
    const auto pop =
        samplePopulation(catalog_, 5000, MixKind::Uniform, rng);
    std::map<JobTypeId, int> counts;
    for (JobTypeId t : pop)
        ++counts[t];
    EXPECT_EQ(counts.size(), catalog_.size());
    // Each type expected ~250 times.
    for (const auto &[t, c] : counts)
        EXPECT_NEAR(c, 250, 100) << "type " << t;
}

TEST_F(PopulationTest, BetaHighSkewsContentious)
{
    Rng rng(3);
    const auto high =
        samplePopulation(catalog_, 20000, MixKind::BetaHigh, rng);
    const auto low =
        samplePopulation(catalog_, 20000, MixKind::BetaLow, rng);

    auto mean_gbps = [&](const std::vector<JobTypeId> &pop) {
        double acc = 0.0;
        for (JobTypeId t : pop)
            acc += catalog_.job(t).gbps;
        return acc / static_cast<double>(pop.size());
    };
    EXPECT_GT(mean_gbps(high), mean_gbps(low) + 5.0);
}

TEST_F(PopulationTest, GaussianPrefersModerateJobs)
{
    Rng rng(4);
    const auto pop =
        samplePopulation(catalog_, 20000, MixKind::Gaussian, rng);
    const auto order = catalog_.idsByBandwidth();
    std::vector<int> counts(catalog_.size(), 0);
    for (JobTypeId t : pop)
        ++counts[t];
    // Middle-ranked jobs should outnumber the extremes.
    const int extremes = counts[order.front()] + counts[order.back()];
    const int middle = counts[order[order.size() / 2]] +
                       counts[order[order.size() / 2 - 1]];
    EXPECT_GT(middle, extremes);
}

TEST_F(PopulationTest, WeightsArePerType)
{
    for (MixKind kind : allMixes()) {
        const auto weights = mixWeights(catalog_, kind);
        EXPECT_EQ(weights.size(), catalog_.size()) << mixName(kind);
        for (double w : weights)
            EXPECT_GE(w, 0.0);
        double total = 0.0;
        for (double w : weights)
            total += w;
        EXPECT_GT(total, 0.0);
    }
}

TEST_F(PopulationTest, MixNamesMatchPaper)
{
    EXPECT_EQ(mixName(MixKind::Uniform), "Uniform");
    EXPECT_EQ(mixName(MixKind::BetaLow), "Beta-Low");
    EXPECT_EQ(mixName(MixKind::BetaHigh), "Beta-High");
    EXPECT_EQ(mixName(MixKind::Gaussian), "Gaussian");
    EXPECT_EQ(allMixes().size(), 4u);
}

TEST_F(PopulationTest, SamplingIsDeterministicPerSeed)
{
    Rng rng_a(7);
    Rng rng_b(7);
    const auto a = samplePopulation(catalog_, 100, MixKind::BetaHigh,
                                    rng_a);
    const auto b = samplePopulation(catalog_, 100, MixKind::BetaHigh,
                                    rng_b);
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace cooper
