/**
 * @file
 * Unit tests for ColocationInstance.
 */

#include <gtest/gtest.h>

#include "core/instance.hh"
#include "util/error.hh"
#include "util/rng.hh"
#include "workload/population.hh"

namespace cooper {
namespace {

class InstanceTest : public ::testing::Test
{
  protected:
    Catalog catalog_ = Catalog::paperTableI();
    InterferenceModel model_{catalog_};

    ColocationInstance
    makeInstance(std::size_t n, std::uint64_t seed = 1)
    {
        Rng rng(seed);
        auto types = samplePopulation(catalog_, n, MixKind::Uniform, rng);
        return ColocationInstance::oracular(catalog_, std::move(types),
                                            model_);
    }
};

TEST_F(InstanceTest, OracularBelievedEqualsTruth)
{
    const auto instance = makeInstance(20);
    for (AgentId a = 0; a < 20; ++a)
        for (AgentId b = 0; b < 20; ++b)
            if (a != b)
                EXPECT_DOUBLE_EQ(instance.trueDisutility(a, b),
                                 instance.believedDisutility(a, b));
}

TEST_F(InstanceTest, DisutilityNearTypePenalty)
{
    const auto instance = makeInstance(10);
    for (AgentId a = 0; a < 10; ++a) {
        for (AgentId b = 0; b < 10; ++b) {
            if (a == b)
                continue;
            const double type_d = instance.truth()(
                instance.typeOf(a), instance.typeOf(b));
            EXPECT_NEAR(instance.trueDisutility(a, b), type_d, 1e-4);
            EXPECT_GE(instance.trueDisutility(a, b), type_d);
        }
    }
}

TEST_F(InstanceTest, JitterBreaksTiesBetweenSameTypeCandidates)
{
    // Two candidates of the same type must not be exactly tied.
    std::vector<JobTypeId> types{0, 1, 1};
    auto instance =
        ColocationInstance::oracular(catalog_, types, model_);
    EXPECT_NE(instance.trueDisutility(0, 1),
              instance.trueDisutility(0, 2));
}

TEST_F(InstanceTest, JitterIsDeterministic)
{
    const auto a = makeInstance(10, 3);
    const auto b = makeInstance(10, 3);
    for (AgentId i = 0; i < 10; ++i)
        for (AgentId j = 0; j < 10; ++j)
            if (i != j)
                EXPECT_DOUBLE_EQ(a.trueDisutility(i, j),
                                 b.trueDisutility(i, j));
}

TEST_F(InstanceTest, BelievedPreferencesExcludeSelf)
{
    const auto instance = makeInstance(8);
    const PreferenceProfile prefs = instance.believedPreferences();
    EXPECT_EQ(prefs.agents(), 8u);
    for (AgentId i = 0; i < 8; ++i) {
        EXPECT_EQ(prefs.list(i).size(), 7u);
        EXPECT_FALSE(prefs.hasCandidate(i, i));
    }
}

TEST_F(InstanceTest, PreferencesSortedByDisutility)
{
    const auto instance = makeInstance(12);
    const PreferenceProfile prefs = instance.believedPreferences();
    for (AgentId i = 0; i < 12; ++i) {
        const auto &list = prefs.list(i);
        for (std::size_t k = 1; k < list.size(); ++k)
            EXPECT_LE(instance.believedDisutility(i, list[k - 1]),
                      instance.believedDisutility(i, list[k]));
    }
}

TEST_F(InstanceTest, MeanPenaltyOverMatchedOnly)
{
    std::vector<JobTypeId> types{0, 0, 0};
    auto instance = ColocationInstance::oracular(catalog_, types, model_);
    Matching m(3);
    m.pair(0, 1);
    const double expected = (instance.trueDisutility(0, 1) +
                             instance.trueDisutility(1, 0)) / 2.0;
    EXPECT_NEAR(instance.meanTruePenalty(m), expected, 1e-12);

    const auto penalties = instance.truePenalties(m);
    EXPECT_DOUBLE_EQ(penalties[2], 0.0);
    EXPECT_GT(penalties[0], 0.0);
}

TEST_F(InstanceTest, InvalidConstructionFatal)
{
    PenaltyMatrix truth(catalog_.size());
    PenaltyMatrix wrong(catalog_.size() + 1);
    std::vector<JobTypeId> types{0};
    EXPECT_THROW(ColocationInstance(catalog_, {}, truth, truth),
                 FatalError);
    EXPECT_THROW(ColocationInstance(catalog_, types, wrong, truth),
                 FatalError);
    std::vector<JobTypeId> bad_type{99};
    EXPECT_THROW(ColocationInstance(catalog_, bad_type, truth, truth),
                 FatalError);
}

} // namespace
} // namespace cooper
