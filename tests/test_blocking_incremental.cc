/**
 * @file
 * Property tests for the incrementally maintained blocking-pair
 * bounds (matching/blocking_incremental.hh).
 *
 * The contract is exact equivalence with the full O(n^2) scans: after
 * ANY sequence of table-row churn, re-pairings, and quiet epochs, the
 * bounds' count / first / pairs answer precisely what
 * countBlockingPairs / firstBlockingPair / findBlockingPairs would —
 * same pairs, same scan order, bit-identical gains — at any thread
 * count. The churn-sequence test here drives randomized interleavings
 * of all three change kinds and cross-checks after every step; the
 * driver test proves the online service's run summary is byte-identical
 * with incrementalBlocking on and off.
 *
 * Part of the tsan suite: the staged parallel row derivation is the
 * code ThreadSanitizer should vet.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "matching/blocking.hh"
#include "matching/blocking_incremental.hh"
#include "matching/disutility.hh"
#include "matching/matching.hh"
#include "online/churn.hh"
#include "online/driver.hh"
#include "sim/interference.hh"
#include "util/rng.hh"
#include "workload/catalog.hh"

namespace cooper {
namespace {

const std::size_t kThreadCounts[] = {1, 2, 8};

/** Mutable penalty matrix + the table/matching views over it. The fn
 *  reads the live penalties, so refreshRows() after an edit brings the
 *  table back in sync exactly as a full rebuild would. */
struct ChurnFixture
{
    std::size_t n = 0;
    std::vector<std::vector<double>> penalty;
    Matching matching{0};
    DisutilityTable table;

    ChurnFixture(std::size_t agents, Rng &rng) : n(agents)
    {
        penalty.assign(n, std::vector<double>(n, 0.0));
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j)
                penalty[i][j] = rng.uniform() * 0.3;
        matching = Matching(n);
        const auto order = rng.permutation(n);
        // Leave ~n/8 agents unmatched to exercise that branch.
        for (std::size_t i = 0; i + 1 < n - n / 8; i += 2)
            matching.pair(order[i], order[i + 1]);
        table = DisutilityTable(n, n, fn());
    }

    DisutilityFn fn() const
    {
        return [this](AgentId a, AgentId b) { return penalty[a][b]; };
    }
};

/** The bounds' answers must equal the scans' answers exactly. */
void
expectMatchesScan(BlockingBounds &bounds, const Matching &matching,
                  const DisutilityTable &table, double alpha,
                  std::size_t threads, const std::string &context)
{
    SCOPED_TRACE(context);
    const auto scan = findBlockingPairs(matching, table, alpha, threads);
    EXPECT_EQ(scan.size(),
              countBlockingPairs(matching, table, alpha, threads));
    EXPECT_EQ(scan.size(), bounds.count());
    const auto via_bounds = bounds.pairs(table);
    ASSERT_EQ(scan.size(), via_bounds.size());
    for (std::size_t i = 0; i < scan.size(); ++i) {
        EXPECT_EQ(scan[i].a, via_bounds[i].a) << "pair " << i;
        EXPECT_EQ(scan[i].b, via_bounds[i].b) << "pair " << i;
        EXPECT_EQ(scan[i].gainA, via_bounds[i].gainA) << "pair " << i;
        EXPECT_EQ(scan[i].gainB, via_bounds[i].gainB) << "pair " << i;
    }
    const auto first_scan = firstBlockingPair(matching, table, alpha);
    const auto first_bounds = bounds.first(table);
    ASSERT_EQ(first_scan.has_value(), first_bounds.has_value());
    if (first_scan.has_value()) {
        EXPECT_EQ(first_scan->a, first_bounds->a);
        EXPECT_EQ(first_scan->b, first_bounds->b);
        EXPECT_EQ(first_scan->gainA, first_bounds->gainA);
        EXPECT_EQ(first_scan->gainB, first_bounds->gainB);
    }
}

TEST(BlockingBounds, RebuildMatchesFullScan)
{
    Rng rng(910);
    for (int round = 0; round < 5; ++round) {
        const std::size_t n = 10 + (round * 17) % 53;
        const ChurnFixture fx(n, rng);
        // Alpha sweep includes values high enough for the rowMin
        // pruning bound to skip most rows.
        for (double alpha : {0.0, 0.02, 0.2}) {
            for (std::size_t threads : kThreadCounts) {
                BlockingBounds bounds;
                EXPECT_FALSE(bounds.ready());
                bounds.rebuild(fx.matching, fx.table, alpha, threads);
                EXPECT_TRUE(bounds.ready());
                EXPECT_EQ(bounds.agents(), n);
                EXPECT_EQ(bounds.lastRescanned(), n);
                std::ostringstream ctx;
                ctx << "round " << round << " alpha " << alpha
                    << " threads " << threads;
                expectMatchesScan(bounds, fx.matching, fx.table, alpha,
                                  threads, ctx.str());
            }
        }
    }
}

TEST(BlockingBounds, ChurnSequenceStaysExactAtEveryStep)
{
    // The tentpole property: interleave table-row churn, partner
    // churn, and quiet epochs; the incremental bounds must equal the
    // from-scratch scans after every single step.
    for (std::size_t threads : kThreadCounts) {
        for (double alpha : {0.0, 0.05}) {
            Rng rng(920 + threads);
            ChurnFixture fx(37, rng);
            BlockingBounds bounds;
            bounds.rebuild(fx.matching, fx.table, alpha, threads);
            for (int step = 0; step < 60; ++step) {
                std::vector<AgentId> dirty;
                const double move = rng.uniform();
                if (move < 0.35) {
                    // Re-randomize a few penalty rows (a profile
                    // refresh): rows i change, columns keep their old
                    // values toward i — exactly the table's row
                    // granularity.
                    const std::size_t count = 1 + step % 3;
                    for (std::size_t k = 0; k < count; ++k) {
                        const AgentId i = AgentId(
                            rng.uniform() * double(fx.n));
                        for (std::size_t j = 0; j < fx.n; ++j)
                            fx.penalty[i][j] = rng.uniform() * 0.3;
                        dirty.push_back(i);
                    }
                    // Duplicates in the dirty list must be harmless.
                    if (!dirty.empty() && step % 4 == 0)
                        dirty.push_back(dirty.front());
                    fx.table.refreshRows(dirty, fx.fn(), threads);
                } else if (move < 0.7) {
                    // Partner churn: break a matched pair and/or form
                    // a new one. No dirty rows — the bounds detect
                    // this internally against the partner snapshot.
                    std::vector<AgentId> matched, free_agents;
                    for (AgentId a = 0; a < fx.n; ++a)
                        (fx.matching.isMatched(a) ? matched
                                                  : free_agents)
                            .push_back(a);
                    if (!matched.empty()) {
                        const AgentId victim = matched[std::size_t(
                            rng.uniform() * double(matched.size()))];
                        fx.matching.unpair(victim);
                    }
                    if (free_agents.size() >= 2 && step % 2 == 0)
                        fx.matching.pair(free_agents[0],
                                         free_agents.back());
                }
                // else: a quiet epoch — nothing changed at all.
                bounds.update(fx.matching, fx.table, alpha, dirty,
                              threads);
                if (move >= 0.7) {
                    EXPECT_EQ(bounds.lastRescanned(), 0u)
                        << "quiet step " << step;
                }
                std::ostringstream ctx;
                ctx << "threads " << threads << " alpha " << alpha
                    << " step " << step << " move " << move;
                expectMatchesScan(bounds, fx.matching, fx.table, alpha,
                                  threads, ctx.str());
            }
        }
    }
}

TEST(BlockingBounds, QuietEpochRescansNothing)
{
    Rng rng(930);
    const ChurnFixture fx(24, rng);
    BlockingBounds bounds;
    bounds.rebuild(fx.matching, fx.table, 0.0, 2);
    const std::size_t count = bounds.count();
    bounds.update(fx.matching, fx.table, 0.0, {}, 2);
    EXPECT_EQ(bounds.lastRescanned(), 0u);
    EXPECT_EQ(bounds.count(), count);
}

TEST(BlockingBounds, UpdateFallsBackToRebuildWhenStale)
{
    Rng rng(940);
    const ChurnFixture small(12, rng);
    const ChurnFixture big(29, rng);

    BlockingBounds bounds;
    // Not ready yet: the first update IS a rebuild.
    bounds.update(small.matching, small.table, 0.0, {}, 2);
    EXPECT_TRUE(bounds.ready());
    EXPECT_EQ(bounds.lastRescanned(), small.n);
    expectMatchesScan(bounds, small.matching, small.table, 0.0, 2,
                      "first update");

    // Alpha changed: every pair's threshold moved, so the incremental
    // path is invalid and the bounds must rescan everything.
    bounds.update(small.matching, small.table, 0.1, {}, 2);
    EXPECT_EQ(bounds.lastRescanned(), small.n);
    expectMatchesScan(bounds, small.matching, small.table, 0.1, 2,
                      "alpha change");

    // Population changed: same story.
    bounds.update(big.matching, big.table, 0.1, {}, 2);
    EXPECT_EQ(bounds.agents(), big.n);
    expectMatchesScan(bounds, big.matching, big.table, 0.1, 2,
                      "population change");

    // Explicit invalidation drops everything.
    bounds.invalidate();
    EXPECT_FALSE(bounds.ready());
    bounds.update(big.matching, big.table, 0.1, {}, 2);
    EXPECT_EQ(bounds.lastRescanned(), big.n);
    expectMatchesScan(bounds, big.matching, big.table, 0.1, 2,
                      "after invalidate");
}

TEST(BlockingBounds, HandlesTinyPopulations)
{
    // Fresh bounds cover nobody; DisutilityTable rejects 0x0, so the
    // smallest buildable populations are n = 1 and n = 2.
    {
        const BlockingBounds fresh;
        EXPECT_FALSE(fresh.ready());
        EXPECT_EQ(fresh.agents(), 0u);
        EXPECT_EQ(fresh.count(), 0u);
    }
    const DisutilityFn zero = [](AgentId, AgentId) { return 0.0; };
    for (std::size_t n : {1u, 2u}) {
        Matching matching(n);
        if (n == 2)
            matching.pair(0, 1);
        const DisutilityTable table(n, n, zero);
        BlockingBounds bounds;
        bounds.rebuild(matching, table, 0.0, 2);
        EXPECT_EQ(bounds.count(), 0u) << "n " << n;
        EXPECT_FALSE(bounds.first(table).has_value()) << "n " << n;
        EXPECT_TRUE(bounds.pairs(table).empty()) << "n " << n;
        bounds.update(matching, table, 0.0, {}, 2);
        EXPECT_EQ(bounds.lastRescanned(), 0u) << "n " << n;
    }
}

// -- Online driver: decisions must not depend on the knob.

ChurnTrace
makeTrace(const Catalog &catalog, std::size_t arrivals,
          std::uint64_t seed, double mean_gap = 6.0)
{
    ChurnConfig churn;
    churn.arrivals = arrivals;
    churn.initialJobs = 12;
    churn.meanInterarrivalTicks = mean_gap;
    churn.meanLifetimeTicks = 400.0;
    Rng rng(seed);
    return generateChurnTrace(catalog, churn, rng);
}

std::string
summaryOf(const OnlineReport &report)
{
    std::ostringstream out;
    writeOnlineSummary(out, report);
    return out.str();
}

TEST(BlockingBounds, DriverSummaryIdenticalWithKnobOnAndOff)
{
    const Catalog catalog = Catalog::paperTableI();
    const InterferenceModel model(catalog);
    const ChurnTrace trace = makeTrace(catalog, 200, 1234);

    // Scenario sweep: profile refresh dirties believed rows mid-run,
    // a tight full-rematch threshold forces bounds rebuilds, and both
    // serial and parallel paths run.
    struct Scenario
    {
        std::size_t threads;
        std::size_t refresh;
        std::size_t fullRematch;
    };
    const Scenario scenarios[] = {
        {1, 0, 32},
        {8, 8, 32},
        {2, 4, 1},
    };
    for (const Scenario &s : scenarios) {
        std::vector<std::string> summaries;
        for (bool incremental_blocking : {true, false}) {
            FrameworkConfig config;
            config.execution.threads = s.threads;
            config.execution.online.refreshProbesPerEpoch = s.refresh;
            config.execution.online.fullRematchBlockingPairs =
                s.fullRematch;
            config.execution.online.incrementalBlocking =
                incremental_blocking;
            OnlineDriver driver(catalog, model, config, 21);
            summaries.push_back(summaryOf(driver.run(trace)));
        }
        EXPECT_EQ(summaries[0], summaries[1])
            << "threads " << s.threads << " refresh " << s.refresh
            << " fullRematch " << s.fullRematch;
    }
}

} // namespace
} // namespace cooper
