/**
 * @file
 * Unit tests for the system profiler and measurement database.
 */

#include <gtest/gtest.h>

#include "sim/profiler.hh"
#include "util/error.hh"

namespace cooper {
namespace {

class ProfilerTest : public ::testing::Test
{
  protected:
    Catalog catalog_ = Catalog::paperTableI();
    InterferenceModel model_{catalog_};
};

TEST_F(ProfilerTest, MeasurementsCenterOnTruth)
{
    SystemProfiler profiler(model_, NoiseConfig{0.004, -0.02}, 1);
    const JobTypeId a = catalog_.jobByName("correlation").id;
    const JobTypeId b = catalog_.jobByName("naive").id;
    double acc = 0.0;
    const int n = 2000;
    for (int i = 0; i < n; ++i)
        acc += profiler.measure(a, b);
    EXPECT_NEAR(acc / n, model_.penalty(a, b), 0.001);
}

TEST_F(ProfilerTest, NoiseCanDipBelowZero)
{
    // Footnote 3: variance occasionally makes colocation look better
    // than stand-alone. A near-zero-penalty pair measured many times
    // must produce at least one negative sample.
    SystemProfiler profiler(model_, NoiseConfig{0.004, -0.02}, 2);
    const JobTypeId a = catalog_.jobByName("swaptions").id;
    const JobTypeId b = catalog_.jobByName("vips").id;
    bool saw_negative = false;
    for (int i = 0; i < 500 && !saw_negative; ++i)
        saw_negative = profiler.measure(a, b) < 0.0;
    EXPECT_TRUE(saw_negative);
}

TEST_F(ProfilerTest, FloorClampsNoise)
{
    SystemProfiler profiler(model_, NoiseConfig{0.05, -0.01}, 3);
    const JobTypeId a = catalog_.jobByName("swaptions").id;
    for (int i = 0; i < 200; ++i)
        EXPECT_GE(profiler.measure(a, a), -0.01);
}

TEST_F(ProfilerTest, DatabaseAveragesRepeats)
{
    SystemProfiler profiler(model_, NoiseConfig{0.01, -0.02}, 4);
    const JobTypeId a = catalog_.jobByName("svm").id;
    const JobTypeId b = catalog_.jobByName("dedup").id;
    EXPECT_FALSE(profiler.database().query(a, b).has_value());
    for (int i = 0; i < 500; ++i)
        profiler.measure(a, b);
    const auto avg = profiler.database().query(a, b);
    ASSERT_TRUE(avg.has_value());
    EXPECT_NEAR(*avg, model_.penalty(a, b), 0.002);
    EXPECT_EQ(profiler.database().totalSamples(), 500u);
    EXPECT_EQ(profiler.database().distinctPairs(), 1u);
}

TEST_F(ProfilerTest, SampleProfilesHitsRequestedDensity)
{
    SystemProfiler profiler(model_, {}, 5);
    const SparseMatrix profiles = profiler.sampleProfiles(0.25);
    EXPECT_GE(profiles.density(), 0.25);
    EXPECT_LT(profiles.density(), 0.40);
}

TEST_F(ProfilerTest, SampleProfilesSymmetricKnownness)
{
    SystemProfiler profiler(model_, {}, 6);
    const SparseMatrix profiles = profiler.sampleProfiles(0.3);
    for (std::size_t i = 0; i < profiles.rows(); ++i)
        for (std::size_t j = 0; j < profiles.cols(); ++j)
            EXPECT_EQ(profiles.known(i, j), profiles.known(j, i));
}

TEST_F(ProfilerTest, SampleProfilesGuaranteesRowCoverage)
{
    SystemProfiler profiler(model_, {}, 7);
    const SparseMatrix profiles = profiler.sampleProfiles(0.05, 2);
    for (std::size_t r = 0; r < profiles.rows(); ++r) {
        std::size_t known = 0;
        for (std::size_t c = 0; c < profiles.cols(); ++c)
            if (profiles.known(r, c))
                ++known;
        EXPECT_GE(known, 2u) << "row " << r;
    }
}

TEST_F(ProfilerTest, FullSamplingFillsMatrix)
{
    SystemProfiler profiler(model_, {}, 8);
    const SparseMatrix profiles = profiler.sampleProfiles(1.0);
    EXPECT_EQ(profiles.knownCount(),
              catalog_.size() * catalog_.size());
}

TEST_F(ProfilerTest, BadRatioFatal)
{
    SystemProfiler profiler(model_, {}, 9);
    EXPECT_THROW(profiler.sampleProfiles(0.0), FatalError);
    EXPECT_THROW(profiler.sampleProfiles(1.5), FatalError);
}

TEST_F(ProfilerTest, DeterministicPerSeed)
{
    SystemProfiler p1(model_, {}, 42);
    SystemProfiler p2(model_, {}, 42);
    const SparseMatrix m1 = p1.sampleProfiles(0.25);
    const SparseMatrix m2 = p2.sampleProfiles(0.25);
    EXPECT_EQ(m1.knownCount(), m2.knownCount());
    for (std::size_t i = 0; i < m1.rows(); ++i)
        for (std::size_t j = 0; j < m1.cols(); ++j) {
            ASSERT_EQ(m1.known(i, j), m2.known(i, j));
            if (m1.known(i, j))
                EXPECT_DOUBLE_EQ(m1.at(i, j), m2.at(i, j));
        }
}

} // namespace
} // namespace cooper
