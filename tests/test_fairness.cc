/**
 * @file
 * Unit tests for fairness metrics.
 */

#include <gtest/gtest.h>

#include "game/fairness.hh"
#include "util/error.hh"

namespace cooper {
namespace {

class FairnessTest : public ::testing::Test
{
  protected:
    Catalog catalog_ = Catalog::paperTableI();
};

TEST_F(FairnessTest, AggregatesPenaltiesPerType)
{
    // Four agents: two correlation, two swaptions, paired across.
    const JobTypeId corr = catalog_.jobByName("correlation").id;
    const JobTypeId swap = catalog_.jobByName("swaptions").id;
    std::vector<JobTypeId> types{corr, swap, corr, swap};
    Matching m(4);
    m.pair(0, 1);
    m.pair(2, 3);
    auto d = [&](AgentId a, AgentId) {
        return types[a] == corr ? 0.2 : 0.05;
    };
    const auto rows = penaltiesByType(catalog_, types, m, d);
    ASSERT_EQ(rows.size(), 2u);
    // Ordered by bandwidth: swaptions first.
    EXPECT_EQ(rows[0].type, swap);
    EXPECT_EQ(rows[0].count, 2u);
    EXPECT_NEAR(rows[0].meanPenalty, 0.05, 1e-12);
    EXPECT_EQ(rows[1].type, corr);
    EXPECT_NEAR(rows[1].meanPenalty, 0.2, 1e-12);
}

TEST_F(FairnessTest, UnmatchedAgentsExcluded)
{
    const JobTypeId corr = catalog_.jobByName("correlation").id;
    std::vector<JobTypeId> types{corr, corr, corr};
    Matching m(3);
    m.pair(0, 1);
    auto d = [](AgentId, AgentId) { return 0.1; };
    const auto rows = penaltiesByType(catalog_, types, m, d);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].count, 2u);
}

TEST_F(FairnessTest, SizeMismatchFatal)
{
    std::vector<JobTypeId> types{0};
    Matching m(2);
    auto d = [](AgentId, AgentId) { return 0.0; };
    EXPECT_THROW(penaltiesByType(catalog_, types, m, d), FatalError);
}

TEST_F(FairnessTest, FairOutcomeScoresPositive)
{
    std::vector<JobPenalty> rows;
    for (int i = 0; i < 10; ++i) {
        JobPenalty row;
        row.gbps = static_cast<double>(i);
        row.meanPenalty = 0.01 * static_cast<double>(i);
        rows.push_back(row);
    }
    const FairnessReport report = fairness(rows);
    EXPECT_NEAR(report.rankCorrelation, 1.0, 1e-9);
    EXPECT_NEAR(report.kendall, 1.0, 1e-9);
    EXPECT_GT(report.linearCorrelation, 0.99);
}

TEST_F(FairnessTest, UnfairOutcomeScoresNearZero)
{
    // Penalties unrelated to demand.
    std::vector<double> penalties{0.05, 0.01, 0.09, 0.02, 0.07,
                                  0.03, 0.08, 0.01, 0.06, 0.04};
    std::vector<JobPenalty> rows;
    for (int i = 0; i < 10; ++i) {
        JobPenalty row;
        row.gbps = static_cast<double>(i);
        row.meanPenalty = penalties[static_cast<std::size_t>(i)];
        rows.push_back(row);
    }
    const FairnessReport report = fairness(rows);
    EXPECT_LT(std::abs(report.rankCorrelation), 0.5);
}

TEST_F(FairnessTest, EmptyRowsGiveZero)
{
    const FairnessReport report = fairness({});
    EXPECT_DOUBLE_EQ(report.rankCorrelation, 0.0);
    EXPECT_DOUBLE_EQ(report.linearCorrelation, 0.0);
}

} // namespace
} // namespace cooper
