/**
 * @file
 * Differential and property tests for the sharded online service.
 *
 * The load-bearing guarantee is the K = 1 differential: a
 * single-shard ShardedDriver must reproduce the flat OnlineDriver
 * bit-for-bit — summary bytes, checkpoint bytes, and the
 * deterministic online.* metrics — at every thread count. On top of
 * that, the router's partition must cover the catalog disjointly
 * under a balance cap, routing must follow migrated jobs, replays
 * must be byte-identical at any thread count and shard count, no job
 * may be lost across shard boundaries, and the per-epoch rebalance
 * stats must honor the migration budget with a monotone
 * non-increasing egalitarian objective.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "io/serialize.hh"
#include "obs/obs.hh"
#include "online/churn.hh"
#include "online/driver.hh"
#include "online/events.hh"
#include "shard/router.hh"
#include "shard/sharded_driver.hh"
#include "sim/interference.hh"
#include "util/error.hh"
#include "workload/catalog.hh"

namespace cooper {
namespace {

struct Fixture
{
    Catalog catalog = Catalog::paperTableI();
    InterferenceModel model{catalog};
};

ChurnTrace
makeTrace(const Catalog &catalog, std::size_t arrivals,
          std::uint64_t seed, double mean_gap = 6.0,
          double mean_life = 400.0)
{
    ChurnConfig churn;
    churn.arrivals = arrivals;
    churn.initialJobs = 12;
    churn.meanInterarrivalTicks = mean_gap;
    churn.meanLifetimeTicks = mean_life;
    Rng rng(seed);
    return generateChurnTrace(catalog, churn, rng);
}

std::string
summaryOf(const OnlineReport &report)
{
    std::ostringstream out;
    writeOnlineSummary(out, report);
    return out.str();
}

std::string
summaryOf(const ShardedReport &report)
{
    std::ostringstream out;
    writeShardedSummary(out, report);
    return out.str();
}

std::string
checkpointOf(const OnlineState &state)
{
    std::ostringstream out;
    writeOnlineState(out, state);
    return out.str();
}

std::string
checkpointOf(const ShardedState &state)
{
    std::ostringstream out;
    writeShardedState(out, state);
    return out.str();
}

/** The deterministic metrics slice: online.* counters and gauges.
 *  Timing histograms are wall-clock and excluded by design. */
std::string
onlineMetricsSlice()
{
    MetricsRegistry *metrics = obsMetrics();
    if (metrics == nullptr)
        return "<no metrics session>";
    const MetricsSnapshot snap = metrics->snapshot();
    std::ostringstream out;
    for (const auto &[name, value] : snap.counters) {
        if (name.rfind("online.", 0) == 0)
            out << name << "=" << value << "\n";
    }
    for (const auto &[name, value] : snap.gauges) {
        if (name.rfind("online.", 0) == 0)
            out << name << "=" << value << "\n";
    }
    return out.str();
}

std::size_t
arrivalsIn(const ChurnTrace &trace)
{
    std::size_t count = 0;
    for (const ChurnEvent &event : trace.events())
        count += event.kind == EventKind::Arrival ? 1 : 0;
    return count;
}

TEST(ShardRouter, PartitionCoversTheCatalogUnderTheBalanceCap)
{
    const Fixture fx;
    const std::size_t types = fx.catalog.size();
    for (const std::size_t k : {2u, 4u, 5u}) {
        const ShardRouter router(fx.catalog, k, 99);
        ASSERT_EQ(router.shards(), k);
        const std::vector<std::size_t> &table = router.typeAssignment();
        ASSERT_EQ(table.size(), types);

        std::vector<std::size_t> counts(k, 0);
        for (const std::size_t shard : table) {
            ASSERT_LT(shard, k);
            ++counts[shard];
        }
        const std::size_t cap = (types + k - 1) / k;
        for (const std::size_t count : counts) {
            EXPECT_GE(count, 1u);
            EXPECT_LE(count, cap);
        }
    }
}

TEST(ShardRouter, ClampsMoreShardsThanTypes)
{
    // The K > catalog edge must clamp, not crash: kmeans itself
    // rejects k > n points, so the router may never forward that.
    const Fixture fx;
    const ShardRouter router(fx.catalog, 64, 7);
    EXPECT_EQ(router.shards(), fx.catalog.size());

    // With as many shards as types the partition is a bijection.
    std::vector<std::size_t> seen(router.shards(), 0);
    for (const std::size_t shard : router.typeAssignment())
        ++seen[shard];
    for (const std::size_t count : seen)
        EXPECT_EQ(count, 1u);

    const ShardRouter single(fx.catalog, 1, 7);
    EXPECT_EQ(single.shards(), 1u);
    for (const std::size_t shard : single.typeAssignment())
        EXPECT_EQ(shard, 0u);
}

TEST(ShardRouter, PartitionIsAPureFunctionOfItsInputs)
{
    const Fixture fx;
    const ShardRouter a(fx.catalog, 4, 2017);
    const ShardRouter b(fx.catalog, 4, 2017);
    EXPECT_EQ(a.typeAssignment(), b.typeAssignment());
}

TEST(ShardRouter, DeparturesFollowMigratedJobs)
{
    const Fixture fx;
    ShardRouter router(fx.catalog, 4, 1);

    const ChurnEvent arrival{10, EventKind::Arrival, 7, 3};
    const std::size_t home = router.route(arrival);
    EXPECT_EQ(home, router.shardOfType(3));
    EXPECT_EQ(router.shardOfUid(7), home);

    const std::size_t away = (home + 1) % router.shards();
    router.recordMigration(7, away);
    EXPECT_EQ(router.shardOfUid(7), away);

    const ChurnEvent departure{20, EventKind::Departure, 7, 3};
    EXPECT_EQ(router.route(departure), away);

    // Routed once, the uid is forgotten; a second departure is the
    // trace-validation failure the router promises to refuse.
    EXPECT_THROW(router.route(departure), FatalError);
}

TEST(ShardedDriver, SingleShardMatchesTheFlatDriverByteForByte)
{
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 500, 2);
    EXPECT_GE(trace.size(), 900u);

    for (const std::size_t threads : {1u, 2u, 8u}) {
        FrameworkConfig config;
        config.execution.threads = threads;

        OnlineDriver flat(fx.catalog, fx.model, config, 17);
        const OnlineReport flat_report = flat.run(trace);

        config.execution.online.shards = 1;
        ShardedDriver sharded(fx.catalog, fx.model, config, 17);
        const ShardedReport report = sharded.run(trace);

        ASSERT_EQ(report.shards, 1u);
        ASSERT_EQ(report.perShard.size(), 1u);
        EXPECT_EQ(summaryOf(report.perShard[0]), summaryOf(flat_report))
            << "threads=" << threads;
        EXPECT_EQ(checkpointOf(sharded.shard(0).snapshot()),
                  checkpointOf(flat.snapshot()))
            << "threads=" << threads;
    }
}

TEST(ShardedDriver, SingleShardMatchesTheFlatDriverMetrics)
{
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 120, 3);
    ObsConfig obs_config;
    obs_config.metrics = true;

    std::string flat_slice;
    {
        const ObsScope obs(obs_config);
        FrameworkConfig config;
        OnlineDriver flat(fx.catalog, fx.model, config, 11);
        flat.run(trace);
        flat_slice = onlineMetricsSlice();
    }

    std::string sharded_slice;
    {
        const ObsScope obs(obs_config);
        FrameworkConfig config;
        config.execution.online.shards = 1;
        ShardedDriver sharded(fx.catalog, fx.model, config, 11);
        sharded.run(trace);
        sharded_slice = onlineMetricsSlice();
    }

    EXPECT_FALSE(flat_slice.empty());
    EXPECT_EQ(sharded_slice, flat_slice);
}

TEST(ShardedDriver, SummaryIsByteIdenticalAtAnyThreadCount)
{
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 300, 5);

    std::vector<std::string> summaries;
    for (const std::size_t threads : {1u, 2u, 8u}) {
        FrameworkConfig config;
        config.execution.threads = threads;
        config.execution.online.shards = 3;
        ShardedDriver driver(fx.catalog, fx.model, config, 23);
        summaries.push_back(summaryOf(driver.run(trace)));
    }
    EXPECT_EQ(summaries[0], summaries[1]);
    EXPECT_EQ(summaries[0], summaries[2]);
}

TEST(ShardedDriver, ReplayIsByteIdenticalAtEveryShardCount)
{
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 200, 6);

    for (const std::size_t k : {1u, 2u, 4u}) {
        FrameworkConfig config;
        config.execution.online.shards = k;
        ShardedDriver first(fx.catalog, fx.model, config, 29);
        ShardedDriver second(fx.catalog, fx.model, config, 29);
        EXPECT_EQ(summaryOf(first.run(trace)),
                  summaryOf(second.run(trace)))
            << "shards=" << k;
    }
}

TEST(ShardedDriver, NoJobIsLostAcrossShardBoundaries)
{
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 200, 8);
    const std::size_t arrivals = arrivalsIn(trace);

    for (const std::size_t k : {1u, 2u, 4u}) {
        FrameworkConfig config;
        config.execution.online.shards = k;
        ShardedDriver driver(fx.catalog, fx.model, config, 31);
        const ShardedReport report = driver.run(trace);

        // Every trace arrival lands in exactly one shard (migrants
        // re-enter through acceptMigrant, which is not an arrival).
        std::size_t routed = 0;
        std::size_t population = 0;
        for (const OnlineReport &shard : report.perShard) {
            routed += shard.totalArrivals;
            population += shard.finalPopulation;
        }
        EXPECT_EQ(routed, arrivals) << "shards=" << k;
        EXPECT_EQ(population, report.finalPopulation) << "shards=" << k;
    }
}

TEST(ShardedDriver, EpochStatsHonorTheBudgetAndTheObjectiveIsMonotone)
{
    const Fixture fx;
    const ChurnTrace trace =
        makeTrace(fx.catalog, 300, 9, /*mean_gap=*/3.0,
                  /*mean_life=*/900.0);

    FrameworkConfig config;
    config.execution.online.shards = 4;
    config.execution.online.rebalanceBudgetPerEpoch = 2;
    ShardedDriver driver(fx.catalog, fx.model, config, 37);
    const ShardedReport report = driver.run(trace);

    ASSERT_FALSE(report.epochs.empty());
    std::size_t migrations = 0;
    for (const ShardEpochStats &epoch : report.epochs) {
        EXPECT_LE(epoch.migrations, 2u);
        EXPECT_LE(epoch.objectiveAfter, epoch.objectiveBefore + 1e-9);
        EXPECT_LT(epoch.worstShard, report.shards);
        migrations += epoch.migrations;
    }
    EXPECT_EQ(migrations, report.totalCrossMigrations);

    // Budget zero switches rebalancing off entirely.
    config.execution.online.rebalanceBudgetPerEpoch = 0;
    ShardedDriver frozen(fx.catalog, fx.model, config, 37);
    EXPECT_EQ(frozen.run(trace).totalCrossMigrations, 0u);
}

TEST(ShardedDriver, MidRunRestoreReachesTheStraightThroughState)
{
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 200, 12);

    FrameworkConfig config;
    config.execution.online.shards = 3;
    config.execution.online.checkpointEveryEpochs = 3;

    // Straight through, capturing the first periodic checkpoint.
    ShardedDriver straight(fx.catalog, fx.model, config, 41);
    ShardedState mid;
    bool captured = false;
    straight.setCheckpointSink([&](const ShardedState &state) {
        if (!captured) {
            mid = state;
            captured = true;
        }
        return true;
    });
    const ShardedReport full_report = straight.run(trace);
    ASSERT_TRUE(captured);
    ASSERT_GT(full_report.epochs.size(), mid.epoch);

    // Resume from the mid-run state and drain the rest of the trace.
    ShardedDriver resumed(fx.catalog, fx.model, config, 41);
    resumed.restore(mid);
    EXPECT_EQ(resumed.epoch(), mid.epoch);
    resumed.run(trace.suffix(resumed.clockTick()));

    EXPECT_EQ(checkpointOf(resumed.snapshot()),
              checkpointOf(straight.snapshot()));
}

TEST(ShardedDriver, RestoreRefusesForeignCheckpoints)
{
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 80, 13);

    FrameworkConfig config;
    config.execution.online.shards = 2;
    ShardedDriver driver(fx.catalog, fx.model, config, 43);
    driver.run(trace);
    const ShardedState state = driver.snapshot();

    // Wrong root seed.
    ShardedDriver other_seed(fx.catalog, fx.model, config, 44);
    EXPECT_THROW(other_seed.restore(state), FatalError);

    // Wrong shard count.
    FrameworkConfig wide = config;
    wide.execution.online.shards = 4;
    ShardedDriver other_count(fx.catalog, fx.model, wide, 43);
    EXPECT_THROW(other_count.restore(state), FatalError);
}

} // namespace
} // namespace cooper
