/**
 * @file
 * Unit tests for the online statistics accumulator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/descriptive.hh"
#include "stats/online.hh"
#include "util/rng.hh"

namespace cooper {
namespace {

TEST(OnlineStats, EmptyAccumulator)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MatchesBatchStatistics)
{
    std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    OnlineStats s;
    for (double x : xs)
        s.add(x);
    EXPECT_EQ(s.count(), xs.size());
    EXPECT_NEAR(s.mean(), mean(xs), 1e-12);
    EXPECT_NEAR(s.variance(), variance(xs), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, SingleValue)
{
    OnlineStats s;
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(OnlineStats, MergeEqualsSequential)
{
    std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
    OnlineStats whole;
    for (double x : xs)
        whole.add(x);

    OnlineStats left, right;
    for (std::size_t i = 0; i < xs.size(); ++i)
        (i < 3 ? left : right).add(xs[i]);
    left.merge(right);

    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-12);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergePropertyOverRandomPartitions)
{
    // Property: scattering a value stream across N accumulators and
    // merging them is equivalent to one accumulator over the whole
    // stream — count/min/max exactly, the moments to tight tolerance.
    // This is the contract the metrics histograms lean on when folding
    // per-thread shards (src/obs/metrics.hh).
    Rng rng(2025);
    for (int trial = 0; trial < 25; ++trial) {
        const std::size_t n =
            2 + static_cast<std::size_t>(
                    rng.uniformInt(std::uint64_t(300)));
        const std::size_t parts =
            1 + static_cast<std::size_t>(
                    rng.uniformInt(std::uint64_t(8)));

        OnlineStats whole;
        std::vector<OnlineStats> shards(parts);
        for (std::size_t i = 0; i < n; ++i) {
            const double x = (rng.uniform() - 0.5) * 20.0;
            whole.add(x);
            const auto shard = static_cast<std::size_t>(
                rng.uniformInt(static_cast<std::uint64_t>(parts)));
            shards[shard].add(x);
        }

        OnlineStats merged;
        for (const OnlineStats &shard : shards)
            merged.merge(shard);

        ASSERT_EQ(merged.count(), whole.count()) << "trial " << trial;
        EXPECT_DOUBLE_EQ(merged.min(), whole.min())
            << "trial " << trial;
        EXPECT_DOUBLE_EQ(merged.max(), whole.max())
            << "trial " << trial;
        EXPECT_NEAR(merged.mean(), whole.mean(),
                    1e-12 * (1.0 + std::fabs(whole.mean())))
            << "trial " << trial;
        EXPECT_NEAR(merged.variance(), whole.variance(),
                    1e-10 * (1.0 + whole.variance()))
            << "trial " << trial;
    }
}

TEST(OnlineStats, MergeWithEmpty)
{
    OnlineStats a;
    a.add(1.0);
    a.add(2.0);
    OnlineStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    OnlineStats b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_NEAR(b.mean(), 1.5, 1e-12);
}

} // namespace
} // namespace cooper
