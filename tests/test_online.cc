/**
 * @file
 * Unit tests for the online statistics accumulator.
 */

#include <gtest/gtest.h>

#include <vector>

#include "stats/descriptive.hh"
#include "stats/online.hh"

namespace cooper {
namespace {

TEST(OnlineStats, EmptyAccumulator)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MatchesBatchStatistics)
{
    std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    OnlineStats s;
    for (double x : xs)
        s.add(x);
    EXPECT_EQ(s.count(), xs.size());
    EXPECT_NEAR(s.mean(), mean(xs), 1e-12);
    EXPECT_NEAR(s.variance(), variance(xs), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, SingleValue)
{
    OnlineStats s;
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(OnlineStats, MergeEqualsSequential)
{
    std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
    OnlineStats whole;
    for (double x : xs)
        whole.add(x);

    OnlineStats left, right;
    for (std::size_t i = 0; i < xs.size(); ++i)
        (i < 3 ? left : right).add(xs[i]);
    left.merge(right);

    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-12);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty)
{
    OnlineStats a;
    a.add(1.0);
    a.add(2.0);
    OnlineStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    OnlineStats b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_NEAR(b.mean(), 1.5, 1e-12);
}

} // namespace
} // namespace cooper
