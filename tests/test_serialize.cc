/**
 * @file
 * Unit tests for profile/matching serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "io/serialize.hh"
#include "util/error.hh"

namespace cooper {
namespace {

TEST(Serialize, ProfilesRoundTrip)
{
    SparseMatrix m(4, 5);
    m.set(0, 0, 0.125);
    m.set(1, 3, -0.01);
    m.set(3, 4, 0.3333333333333333);

    std::stringstream buffer;
    writeProfiles(buffer, m);
    const SparseMatrix back = readProfiles(buffer);

    EXPECT_EQ(back.rows(), 4u);
    EXPECT_EQ(back.cols(), 5u);
    EXPECT_EQ(back.knownCount(), 3u);
    EXPECT_DOUBLE_EQ(back.at(0, 0), 0.125);
    EXPECT_DOUBLE_EQ(back.at(1, 3), -0.01);
    EXPECT_DOUBLE_EQ(back.at(3, 4), 0.3333333333333333);
    EXPECT_FALSE(back.known(2, 2));
}

TEST(Serialize, EmptyProfilesRoundTrip)
{
    SparseMatrix m(2, 2);
    std::stringstream buffer;
    writeProfiles(buffer, m);
    const SparseMatrix back = readProfiles(buffer);
    EXPECT_EQ(back.knownCount(), 0u);
}

TEST(Serialize, MatchingRoundTrip)
{
    Matching m(6);
    m.pair(0, 5);
    m.pair(2, 3);

    std::stringstream buffer;
    writeMatching(buffer, m);
    const Matching back = readMatching(buffer);

    EXPECT_EQ(back.size(), 6u);
    EXPECT_EQ(back.partnerOf(0), 5u);
    EXPECT_EQ(back.partnerOf(3), 2u);
    EXPECT_FALSE(back.isMatched(1));
    EXPECT_FALSE(back.isMatched(4));
}

TEST(Serialize, RejectsWrongHeader)
{
    std::stringstream buffer("cooper-matching 1 4\n0 1\n");
    EXPECT_THROW(readProfiles(buffer), FatalError);
    std::stringstream buffer2("cooper-profiles 1 2 2\n");
    EXPECT_THROW(readMatching(buffer2), FatalError);
}

TEST(Serialize, RejectsUnsupportedVersion)
{
    std::stringstream buffer("cooper-profiles 99 2 2\n");
    EXPECT_THROW(readProfiles(buffer), FatalError);
}

TEST(Serialize, RejectsMalformedCells)
{
    std::stringstream garbage("cooper-profiles 1 2 2\n0 zero 0.5\n");
    EXPECT_THROW(readProfiles(garbage), FatalError);
    std::stringstream outside("cooper-profiles 1 2 2\n5 0 0.5\n");
    EXPECT_THROW(readProfiles(outside), FatalError);
}

TEST(Serialize, RejectsCorruptMatching)
{
    std::stringstream repeated("cooper-matching 1 4\n0 1\n1 2\n");
    EXPECT_THROW(readMatching(repeated), FatalError);
    std::stringstream outside("cooper-matching 1 2\n0 7\n");
    EXPECT_THROW(readMatching(outside), FatalError);
    std::stringstream empty("");
    EXPECT_THROW(readMatching(empty), FatalError);
}

TEST(Serialize, FileRoundTrip)
{
    const std::string profile_path = "/tmp/cooper_test_profiles.txt";
    const std::string matching_path = "/tmp/cooper_test_matching.txt";

    SparseMatrix m(3, 3);
    m.set(1, 2, 0.07);
    saveProfiles(profile_path, m);
    const SparseMatrix mp = loadProfiles(profile_path);
    EXPECT_DOUBLE_EQ(mp.at(1, 2), 0.07);

    Matching match(4);
    match.pair(1, 2);
    saveMatching(matching_path, match);
    const Matching mm = loadMatching(matching_path);
    EXPECT_EQ(mm.partnerOf(1), 2u);

    std::remove(profile_path.c_str());
    std::remove(matching_path.c_str());
}

TEST(Serialize, FileErrorsFatal)
{
    SparseMatrix m(2, 2);
    EXPECT_THROW(saveProfiles("/no_such_dir_xyz/p.txt", m), FatalError);
    EXPECT_THROW(loadProfiles("/no_such_dir_xyz/p.txt"), FatalError);
    Matching match(2);
    EXPECT_THROW(saveMatching("/no_such_dir_xyz/m.txt", match),
                 FatalError);
    EXPECT_THROW(loadMatching("/no_such_dir_xyz/m.txt"), FatalError);
}

} // namespace
} // namespace cooper
