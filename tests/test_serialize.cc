/**
 * @file
 * Unit tests for profile/matching serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "io/serialize.hh"
#include "util/error.hh"

namespace cooper {
namespace {

TEST(Serialize, ProfilesRoundTrip)
{
    SparseMatrix m(4, 5);
    m.set(0, 0, 0.125);
    m.set(1, 3, -0.01);
    m.set(3, 4, 0.3333333333333333);

    std::stringstream buffer;
    writeProfiles(buffer, m);
    const SparseMatrix back = readProfiles(buffer);

    EXPECT_EQ(back.rows(), 4u);
    EXPECT_EQ(back.cols(), 5u);
    EXPECT_EQ(back.knownCount(), 3u);
    EXPECT_DOUBLE_EQ(back.at(0, 0), 0.125);
    EXPECT_DOUBLE_EQ(back.at(1, 3), -0.01);
    EXPECT_DOUBLE_EQ(back.at(3, 4), 0.3333333333333333);
    EXPECT_FALSE(back.known(2, 2));
}

TEST(Serialize, EmptyProfilesRoundTrip)
{
    SparseMatrix m(2, 2);
    std::stringstream buffer;
    writeProfiles(buffer, m);
    const SparseMatrix back = readProfiles(buffer);
    EXPECT_EQ(back.knownCount(), 0u);
}

TEST(Serialize, MatchingRoundTrip)
{
    Matching m(6);
    m.pair(0, 5);
    m.pair(2, 3);

    std::stringstream buffer;
    writeMatching(buffer, m);
    const Matching back = readMatching(buffer);

    EXPECT_EQ(back.size(), 6u);
    EXPECT_EQ(back.partnerOf(0), 5u);
    EXPECT_EQ(back.partnerOf(3), 2u);
    EXPECT_FALSE(back.isMatched(1));
    EXPECT_FALSE(back.isMatched(4));
}

TEST(Serialize, RejectsWrongHeader)
{
    std::stringstream buffer("cooper-matching 1 4\n0 1\n");
    EXPECT_THROW(readProfiles(buffer), FatalError);
    std::stringstream buffer2("cooper-profiles 1 2 2\n");
    EXPECT_THROW(readMatching(buffer2), FatalError);
}

TEST(Serialize, RejectsUnsupportedVersion)
{
    std::stringstream buffer("cooper-profiles 99 2 2\n");
    EXPECT_THROW(readProfiles(buffer), FatalError);
}

TEST(Serialize, RejectsMalformedCells)
{
    std::stringstream garbage("cooper-profiles 1 2 2\n0 zero 0.5\n");
    EXPECT_THROW(readProfiles(garbage), FatalError);
    std::stringstream outside("cooper-profiles 1 2 2\n5 0 0.5\n");
    EXPECT_THROW(readProfiles(outside), FatalError);
}

TEST(Serialize, RejectsCorruptMatching)
{
    std::stringstream repeated("cooper-matching 1 4\n0 1\n1 2\n");
    EXPECT_THROW(readMatching(repeated), FatalError);
    std::stringstream outside("cooper-matching 1 2\n0 7\n");
    EXPECT_THROW(readMatching(outside), FatalError);
    std::stringstream empty("");
    EXPECT_THROW(readMatching(empty), FatalError);
}

TEST(Serialize, FileRoundTrip)
{
    const std::string profile_path = "/tmp/cooper_test_profiles.txt";
    const std::string matching_path = "/tmp/cooper_test_matching.txt";

    SparseMatrix m(3, 3);
    m.set(1, 2, 0.07);
    saveProfiles(profile_path, m);
    const SparseMatrix mp = loadProfiles(profile_path);
    EXPECT_DOUBLE_EQ(mp.at(1, 2), 0.07);

    Matching match(4);
    match.pair(1, 2);
    saveMatching(matching_path, match);
    const Matching mm = loadMatching(matching_path);
    EXPECT_EQ(mm.partnerOf(1), 2u);

    std::remove(profile_path.c_str());
    std::remove(matching_path.c_str());
}

OnlineState
sampleOnlineState()
{
    OnlineState state;
    state.seed = 42;
    state.epoch = 3;
    state.clockTick = 300;
    state.live = {{1, 0}, {2, 4}, {5, 2}};
    state.pairs = {{1, 5}};
    state.pending = {{7, 1, 250}, {8, 3, 260}};
    state.rejected = 2;
    state.queueHighWater = 5;
    state.totalArrivals = 9;
    state.totalDepartures = 4;
    state.totalAdmitted = 6;
    state.totalProbes = 21;
    state.totalMigrations = 8;
    state.totalPairsBroken = 3;
    state.totalFullRematches = 1;
    state.lastMeanPenalty = 0.03125;
    SparseMatrix ratings(6, 6);
    ratings.set(0, 0, 0.125);
    ratings.set(2, 4, -0.01);
    ratings.set(4, 2, 0.3333333333333333);
    state.ratings = ratings;
    return state;
}

TEST(Serialize, OnlineStateRoundTrip)
{
    const OnlineState state = sampleOnlineState();
    std::stringstream buffer;
    writeOnlineState(buffer, state);
    const OnlineState back = readOnlineState(buffer);

    EXPECT_EQ(back.seed, 42u);
    EXPECT_EQ(back.epoch, 3u);
    EXPECT_EQ(back.clockTick, 300u);
    ASSERT_EQ(back.live.size(), 3u);
    EXPECT_EQ(back.live[1].uid, 2u);
    EXPECT_EQ(back.live[1].type, 4u);
    ASSERT_EQ(back.pairs.size(), 1u);
    EXPECT_EQ(back.pairs[0].first, 1u);
    EXPECT_EQ(back.pairs[0].second, 5u);
    ASSERT_EQ(back.pending.size(), 2u);
    EXPECT_EQ(back.pending[1].uid, 8u);
    EXPECT_EQ(back.pending[1].arrivalTick, 260u);
    EXPECT_EQ(back.rejected, 2u);
    EXPECT_EQ(back.queueHighWater, 5u);
    EXPECT_EQ(back.totalProbes, 21u);
    EXPECT_EQ(back.totalFullRematches, 1u);
    EXPECT_DOUBLE_EQ(back.lastMeanPenalty, 0.03125);
    EXPECT_EQ(back.ratings.rows(), 6u);
    EXPECT_EQ(back.ratings.knownCount(), 3u);
    EXPECT_DOUBLE_EQ(back.ratings.at(4, 2), 0.3333333333333333);

    // The round trip must be byte-stable, not just value-stable: a
    // checkpoint written from a restored state is the same file.
    std::stringstream first, second;
    writeOnlineState(first, state);
    writeOnlineState(second, back);
    EXPECT_EQ(first.str(), second.str());
}

TEST(Serialize, OnlineStateRejectsWrongHeader)
{
    std::stringstream wrong("cooper-matching 1 4\n0 1\n");
    EXPECT_THROW(readOnlineState(wrong), FatalError);
    std::stringstream version("cooper-online-state 99\nseed 1\n");
    EXPECT_THROW(readOnlineState(version), FatalError);
}

TEST(Serialize, OnlineStateRejectsTruncation)
{
    std::stringstream full;
    writeOnlineState(full, sampleOnlineState());
    const std::string text = full.str();

    // Cut the document off after each of the first few lines; every
    // prefix must be rejected, never half-read.
    std::size_t pos = 0;
    for (int lines = 0; lines < 6; ++lines) {
        pos = text.find('\n', pos) + 1;
        std::stringstream cut(text.substr(0, pos));
        EXPECT_THROW(readOnlineState(cut), FatalError);
    }
}

TEST(Serialize, OnlineStateRejectsBadKeyword)
{
    std::stringstream full;
    writeOnlineState(full, sampleOnlineState());
    std::string text = full.str();
    const std::size_t at = text.find("penalty");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, 7, "penalti");
    std::stringstream corrupt(text);
    EXPECT_THROW(readOnlineState(corrupt), FatalError);
}

TEST(Serialize, OnlineStateRejectsUnorderedPair)
{
    std::stringstream full;
    writeOnlineState(full, sampleOnlineState());
    std::string text = full.str();
    const std::size_t at = text.find("pairs 1\n1 5\n");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, 12, "pairs 1\n5 1\n");
    std::stringstream corrupt(text);
    EXPECT_THROW(readOnlineState(corrupt), FatalError);
}

TEST(Serialize, OnlineStateRejectsRatingsOutsideShape)
{
    std::stringstream full;
    writeOnlineState(full, sampleOnlineState());
    std::string text = full.str();
    const std::size_t at = text.find("2 4 -0.01");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, 9, "2 9 -0.01");
    std::stringstream corrupt(text);
    EXPECT_THROW(readOnlineState(corrupt), FatalError);
}

TEST(Serialize, OnlineStateRejectsDuplicateRatingsCell)
{
    std::stringstream full;
    writeOnlineState(full, sampleOnlineState());
    std::string text = full.str();
    const std::size_t at = text.find("2 4 -0.01");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, 9, "0 0 -0.01");
    std::stringstream corrupt(text);
    EXPECT_THROW(readOnlineState(corrupt), FatalError);
}

/** A state whose population runs under the coalition policy. */
OnlineState
sampleCoalitionState()
{
    OnlineState state = sampleOnlineState();
    state.live = {{1, 0}, {2, 4}, {5, 2}, {8, 1}, {9, 3}};
    state.pairs = {};
    state.groups = {{1, 2, 5}, {8, 9}};
    return state;
}

TEST(Serialize, OnlineStateGroupsRoundTrip)
{
    const OnlineState state = sampleCoalitionState();
    std::stringstream buffer;
    writeOnlineState(buffer, state);
    const OnlineState back = readOnlineState(buffer);

    ASSERT_EQ(back.groups.size(), 2u);
    EXPECT_EQ(back.groups[0], (std::vector<JobUid>{1, 2, 5}));
    EXPECT_EQ(back.groups[1], (std::vector<JobUid>{8, 9}));

    // Byte-stable like the rest of the format.
    std::stringstream first, second;
    writeOnlineState(first, state);
    writeOnlineState(second, back);
    EXPECT_EQ(first.str(), second.str());
}

TEST(Serialize, OnlineStateRejectsUndersizedGroup)
{
    std::stringstream full;
    writeOnlineState(full, sampleCoalitionState());
    std::string text = full.str();
    const std::size_t at = text.find("groups 2\n3 1 2 5\n");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, 17, "groups 2\n1 1\n");
    std::stringstream corrupt(text);
    EXPECT_THROW(readOnlineState(corrupt), FatalError);
}

TEST(Serialize, OnlineStateRejectsTruncatedGroup)
{
    std::stringstream full;
    writeOnlineState(full, sampleCoalitionState());
    std::string text = full.str();

    // Declare four members over a three-member line: the reader must
    // notice the shortfall, not bleed into the next section.
    const std::size_t at = text.find("3 1 2 5\n");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, 8, "4 1 2 5\n");
    std::stringstream corrupt(text);
    EXPECT_THROW(readOnlineState(corrupt), FatalError);
}

TEST(Serialize, OnlineStateRejectsUidInTwoGroups)
{
    OnlineState state = sampleCoalitionState();
    state.groups = {{1, 2, 5}, {5, 8}};
    std::stringstream buffer;
    writeOnlineState(buffer, state);
    EXPECT_THROW(readOnlineState(buffer), FatalError);
}

TEST(Serialize, OnlineStateRejectsUnsortedGroupMembers)
{
    std::stringstream full;
    writeOnlineState(full, sampleCoalitionState());
    std::string text = full.str();
    const std::size_t at = text.find("3 1 2 5\n");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, 8, "3 2 1 5\n");
    std::stringstream corrupt(text);
    EXPECT_THROW(readOnlineState(corrupt), FatalError);
}

TEST(Serialize, OnlineStateRejectsGroupsOutOfOrder)
{
    OnlineState state = sampleCoalitionState();
    state.groups = {{8, 9}, {1, 2, 5}};
    std::stringstream buffer;
    writeOnlineState(buffer, state);
    EXPECT_THROW(readOnlineState(buffer), FatalError);
}

TEST(Serialize, OnlineStateFileRoundTrip)
{
    const std::string path = "/tmp/cooper_test_online_state.txt";
    saveOnlineState(path, sampleOnlineState());
    const OnlineState back = loadOnlineState(path);
    EXPECT_EQ(back.seed, 42u);
    EXPECT_EQ(back.ratings.knownCount(), 3u);
    std::remove(path.c_str());

    EXPECT_THROW(
        saveOnlineState("/no_such_dir_xyz/s.txt", sampleOnlineState()),
        FatalError);
    EXPECT_THROW(loadOnlineState("/no_such_dir_xyz/s.txt"), FatalError);
}

ShardedState
sampleShardedState()
{
    ShardedState state;
    state.seed = 42;
    state.epoch = 3;
    state.typeShard = {0, 1, 1, 0};
    state.uidShard = {{1, 0}, {2, 1}, {5, 1}};
    state.totalCrossMigrations = 7;
    state.totalRebalanceEpochs = 2;
    state.lastObjective = 0.5;
    state.perShard = {sampleOnlineState(), sampleOnlineState()};
    state.perShard[1].live = {{2, 1}};
    state.perShard[1].pairs = {};
    return state;
}

TEST(Serialize, ShardedStateRoundTrip)
{
    const ShardedState state = sampleShardedState();
    std::stringstream buffer;
    writeShardedState(buffer, state);
    const ShardedState back = readShardedState(buffer);

    EXPECT_EQ(back.seed, 42u);
    EXPECT_EQ(back.epoch, 3u);
    EXPECT_EQ(back.typeShard, state.typeShard);
    EXPECT_EQ(back.uidShard, state.uidShard);
    EXPECT_EQ(back.totalCrossMigrations, 7u);
    EXPECT_EQ(back.totalRebalanceEpochs, 2u);
    EXPECT_DOUBLE_EQ(back.lastObjective, 0.5);
    ASSERT_EQ(back.perShard.size(), 2u);
    EXPECT_EQ(back.perShard[0].live.size(), 3u);
    EXPECT_EQ(back.perShard[1].live.size(), 1u);

    // Byte-stable, like the flat format: a checkpoint written from a
    // restored state is the same file.
    std::stringstream first, second;
    writeShardedState(first, state);
    writeShardedState(second, back);
    EXPECT_EQ(first.str(), second.str());
}

TEST(Serialize, ShardedStateRejectsShardCountMismatch)
{
    std::stringstream full;
    writeShardedState(full, sampleShardedState());
    std::string text = full.str();

    // Declare three shards over a two-shard body: the reader must
    // notice the missing block, not return a half-fleet.
    const std::size_t at = text.find("sharded 2 ");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, 10, "sharded 3 ");
    std::stringstream corrupt(text);
    EXPECT_THROW(readShardedState(corrupt), FatalError);
}

TEST(Serialize, ShardedStateRejectsTruncatedShardBlock)
{
    std::stringstream full;
    writeShardedState(full, sampleShardedState());
    const std::string text = full.str();

    // Cut inside the last per-shard block; the embedded v4 reader
    // must fail on its own truncation, never half-read.
    const std::size_t at = text.rfind("penalty");
    ASSERT_NE(at, std::string::npos);
    std::stringstream cut(text.substr(0, at));
    EXPECT_THROW(readShardedState(cut), FatalError);

    // And cut right before the second block's header line.
    const std::size_t shard1 = text.find("shard 1\n");
    ASSERT_NE(shard1, std::string::npos);
    std::stringstream missing(text.substr(0, shard1));
    EXPECT_THROW(readShardedState(missing), FatalError);
}

TEST(Serialize, ShardedStateRejectsUidOutsideDeclaredShards)
{
    std::stringstream full;
    writeShardedState(full, sampleShardedState());
    std::string text = full.str();
    const std::size_t at = text.find("uids 3\n1 0\n");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, 11, "uids 3\n1 9\n");
    std::stringstream corrupt(text);
    EXPECT_THROW(readShardedState(corrupt), FatalError);
}

TEST(Serialize, ShardedStateRejectsDisagreeingShardEpochs)
{
    ShardedState state = sampleShardedState();
    state.perShard[1].epoch = 4; // fleet committed epoch 3
    std::stringstream buffer;
    writeShardedState(buffer, state);
    EXPECT_THROW(readShardedState(buffer), FatalError);
}

TEST(Serialize, ShardedStateFileRoundTrip)
{
    const std::string path = "/tmp/cooper_test_sharded_state.txt";
    saveShardedState(path, sampleShardedState());
    const ShardedState back = loadShardedState(path);
    EXPECT_EQ(back.perShard.size(), 2u);
    std::remove(path.c_str());

    EXPECT_THROW(saveShardedState("/no_such_dir_xyz/s.txt",
                                  sampleShardedState()),
                 FatalError);
    EXPECT_THROW(loadShardedState("/no_such_dir_xyz/s.txt"),
                 FatalError);
}

TEST(Serialize, FileErrorsFatal)
{
    SparseMatrix m(2, 2);
    EXPECT_THROW(saveProfiles("/no_such_dir_xyz/p.txt", m), FatalError);
    EXPECT_THROW(loadProfiles("/no_such_dir_xyz/p.txt"), FatalError);
    Matching match(2);
    EXPECT_THROW(saveMatching("/no_such_dir_xyz/m.txt", match),
                 FatalError);
    EXPECT_THROW(loadMatching("/no_such_dir_xyz/m.txt"), FatalError);
}

} // namespace
} // namespace cooper
