/**
 * @file
 * Unit tests for descriptive statistics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/descriptive.hh"
#include "util/error.hh"

namespace cooper {
namespace {

TEST(Descriptive, MeanBasics)
{
    std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
    EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Descriptive, VarianceUnbiased)
{
    std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(variance(std::vector<double>{1.0}), 0.0);
}

TEST(Descriptive, StddevIsRootVariance)
{
    std::vector<double> xs{1.0, 3.0};
    EXPECT_NEAR(stddev(xs), std::sqrt(2.0), 1e-12);
}

TEST(Descriptive, MinMax)
{
    std::vector<double> xs{3.0, -1.0, 7.0};
    EXPECT_DOUBLE_EQ(minOf(xs), -1.0);
    EXPECT_DOUBLE_EQ(maxOf(xs), 7.0);
    EXPECT_THROW(minOf(std::vector<double>{}), FatalError);
    EXPECT_THROW(maxOf(std::vector<double>{}), FatalError);
}

TEST(Descriptive, QuantileInterpolates)
{
    std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.75);
}

TEST(Descriptive, QuantileUnsortedInput)
{
    std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(Descriptive, QuantileSingleElement)
{
    std::vector<double> xs{5.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.3), 5.0);
}

TEST(Descriptive, QuantileRejectsBadInput)
{
    std::vector<double> xs{1.0};
    EXPECT_THROW(quantile(xs, -0.1), FatalError);
    EXPECT_THROW(quantile(xs, 1.1), FatalError);
    EXPECT_THROW(quantile(std::vector<double>{}, 0.5), FatalError);
}

TEST(Descriptive, MedianOddCount)
{
    std::vector<double> xs{9.0, 1.0, 5.0};
    EXPECT_DOUBLE_EQ(median(xs), 5.0);
}

TEST(Descriptive, BoxStatsQuartiles)
{
    std::vector<double> xs;
    for (int i = 1; i <= 100; ++i)
        xs.push_back(static_cast<double>(i));
    const BoxStats b = boxStats(xs);
    EXPECT_NEAR(b.median, 50.5, 1e-12);
    EXPECT_NEAR(b.q1, 25.75, 1e-12);
    EXPECT_NEAR(b.q3, 75.25, 1e-12);
    // No outliers: whiskers reach the extremes.
    EXPECT_DOUBLE_EQ(b.whiskerLow, 1.0);
    EXPECT_DOUBLE_EQ(b.whiskerHigh, 100.0);
}

TEST(Descriptive, BoxStatsClipsOutliers)
{
    std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0, 100.0};
    const BoxStats b = boxStats(xs, 1.5);
    EXPECT_LT(b.whiskerHigh, 100.0);
    EXPECT_GE(b.whiskerHigh, b.q3);
}

TEST(Descriptive, BoxStatsWiderWhiskersKeepMore)
{
    std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0, 12.0};
    const BoxStats narrow = boxStats(xs, 1.5);
    const BoxStats wide = boxStats(xs, 3.0);
    EXPECT_LE(narrow.whiskerHigh, wide.whiskerHigh);
}

TEST(Descriptive, RanksSimple)
{
    std::vector<double> xs{10.0, 30.0, 20.0};
    const auto r = ranks(xs);
    EXPECT_DOUBLE_EQ(r[0], 1.0);
    EXPECT_DOUBLE_EQ(r[1], 3.0);
    EXPECT_DOUBLE_EQ(r[2], 2.0);
}

TEST(Descriptive, RanksAverageTies)
{
    std::vector<double> xs{1.0, 2.0, 2.0, 3.0};
    const auto r = ranks(xs);
    EXPECT_DOUBLE_EQ(r[0], 1.0);
    EXPECT_DOUBLE_EQ(r[1], 2.5);
    EXPECT_DOUBLE_EQ(r[2], 2.5);
    EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Descriptive, RanksAllEqual)
{
    std::vector<double> xs{5.0, 5.0, 5.0};
    const auto r = ranks(xs);
    for (double v : r)
        EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(Descriptive, HistogramCounts)
{
    std::vector<double> xs{0.1, 0.2, 0.6, 0.9, 1.0, -0.5, 2.0};
    const auto h = histogram(xs, 0.0, 1.0, 2);
    EXPECT_EQ(h.size(), 2u);
    EXPECT_EQ(h[0], 2u); // 0.1, 0.2
    EXPECT_EQ(h[1], 3u); // 0.6, 0.9, 1.0 (top edge goes to last bin)
}

TEST(Descriptive, HistogramRejectsBadConfig)
{
    std::vector<double> xs{1.0};
    EXPECT_THROW(histogram(xs, 0.0, 1.0, 0), FatalError);
    EXPECT_THROW(histogram(xs, 1.0, 0.0, 4), FatalError);
}

} // namespace
} // namespace cooper
