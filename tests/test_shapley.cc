/**
 * @file
 * Unit tests for the Shapley value (Equation 1 and Appendix A).
 */

#include <gtest/gtest.h>

#include <bit>
#include <numeric>

#include "game/shapley.hh"
#include "util/error.hh"

namespace cooper {
namespace {

TEST(Shapley, AppendixExample)
{
    // Users contribute interference {1, 2, 3}; coalition penalty is
    // the sum over members (zero for singletons). The appendix works
    // this out to phi = {1.5, 2.0, 2.5}.
    const auto v = interferenceGame({1.0, 2.0, 3.0});
    const auto phi = shapleyExact(3, v);
    ASSERT_EQ(phi.size(), 3u);
    EXPECT_NEAR(phi[0], 1.5, 1e-12);
    EXPECT_NEAR(phi[1], 2.0, 1e-12);
    EXPECT_NEAR(phi[2], 2.5, 1e-12);
}

TEST(Shapley, AppendixCoalitionValues)
{
    // Figure 14's left table.
    const auto v = interferenceGame({1.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(v(0b001), 0.0);
    EXPECT_DOUBLE_EQ(v(0b010), 0.0);
    EXPECT_DOUBLE_EQ(v(0b100), 0.0);
    EXPECT_DOUBLE_EQ(v(0b011), 3.0);
    EXPECT_DOUBLE_EQ(v(0b101), 4.0);
    EXPECT_DOUBLE_EQ(v(0b110), 5.0);
    EXPECT_DOUBLE_EQ(v(0b111), 6.0);
}

TEST(Shapley, MarginalTableMatchesAppendix)
{
    const auto v = interferenceGame({1.0, 2.0, 3.0});
    const auto table = shapleyMarginalTable(3, v);
    ASSERT_EQ(table.size(), 6u); // 3! permutations

    // Figure 14: ordering {A, C, B} gives marginals A=0, C=4, B=2.
    // Lexicographic permutations of {0,1,2}: index 1 is {0, 2, 1}.
    EXPECT_DOUBLE_EQ(table[1][0], 0.0);
    EXPECT_DOUBLE_EQ(table[1][2], 4.0);
    EXPECT_DOUBLE_EQ(table[1][1], 2.0);

    // Averaging the table recovers the Shapley values.
    for (std::size_t i = 0; i < 3; ++i) {
        double acc = 0.0;
        for (const auto &row : table)
            acc += row[i];
        EXPECT_NEAR(acc / 6.0, 1.5 + 0.5 * static_cast<double>(i),
                    1e-12);
    }
}

TEST(Shapley, EfficiencyAxiom)
{
    // Shapley values sum to the grand coalition's value.
    const auto v = interferenceGame({0.5, 1.5, 2.5, 4.0});
    const auto phi = shapleyExact(4, v);
    const double total = std::accumulate(phi.begin(), phi.end(), 0.0);
    EXPECT_NEAR(total, v(0b1111), 1e-12);
}

TEST(Shapley, SymmetryAxiom)
{
    // Interchangeable agents receive equal shares.
    const auto v = interferenceGame({2.0, 2.0, 5.0});
    const auto phi = shapleyExact(3, v);
    EXPECT_NEAR(phi[0], phi[1], 1e-12);
}

TEST(Shapley, DummyAxiom)
{
    // An agent adding nothing to any coalition gets zero.
    const CharacteristicFn v = [](CoalitionMask s) {
        // Only agent 0 generates value.
        return (s & 1) ? 10.0 : 0.0;
    };
    const auto phi = shapleyExact(3, v);
    EXPECT_NEAR(phi[0], 10.0, 1e-12);
    EXPECT_NEAR(phi[1], 0.0, 1e-12);
    EXPECT_NEAR(phi[2], 0.0, 1e-12);
}

TEST(Shapley, MonotoneInContribution)
{
    const auto v = interferenceGame({1.0, 2.0, 3.0, 4.0, 5.0});
    const auto phi = shapleyExact(5, v);
    for (std::size_t i = 1; i < phi.size(); ++i)
        EXPECT_GT(phi[i], phi[i - 1]);
}

TEST(Shapley, SampledConvergesToExact)
{
    const auto v = interferenceGame({1.0, 2.0, 3.0, 4.0});
    const auto exact = shapleyExact(4, v);
    Rng rng(55);
    const auto sampled = shapleySampled(4, v, 20000, rng);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(sampled[i], exact[i], 0.05) << "agent " << i;
}

TEST(Shapley, SampledEfficiencyHoldsExactly)
{
    // Every sampled permutation telescopes to v(grand coalition), so
    // efficiency holds regardless of sample count.
    const auto v = interferenceGame({3.0, 1.0, 2.0});
    Rng rng(56);
    const auto phi = shapleySampled(3, v, 10, rng);
    EXPECT_NEAR(std::accumulate(phi.begin(), phi.end(), 0.0), v(0b111),
                1e-12);
}

TEST(Shapley, InputValidation)
{
    const auto v = interferenceGame({1.0});
    Rng rng(1);
    EXPECT_THROW(shapleyExact(0, v), FatalError);
    EXPECT_THROW(shapleyExact(21, v), FatalError);
    EXPECT_THROW(shapleySampled(0, v, 10, rng), FatalError);
    EXPECT_THROW(shapleySampled(2, v, 0, rng), FatalError);
    EXPECT_THROW(shapleyMarginalTable(9, v), FatalError);
}

} // namespace
} // namespace cooper
