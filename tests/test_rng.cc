/**
 * @file
 * Unit tests for the deterministic random number generator.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/error.hh"
#include "util/rng.hh"

namespace cooper {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a() == b())
            ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedWorks)
{
    Rng rng(0);
    EXPECT_NE(rng(), 0u); // splitmix expansion avoids the zero state
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double acc = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        acc += rng.uniform();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-2.5, 7.5);
        EXPECT_GE(u, -2.5);
        EXPECT_LT(u, 7.5);
    }
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(6));
    EXPECT_EQ(seen.size(), 6u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 5u);
}

TEST(Rng, UniformIntInclusiveRange)
{
    Rng rng(5);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(-2, 2));
    EXPECT_EQ(seen.size(), 5u);
    EXPECT_EQ(*seen.begin(), -2);
    EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, UniformIntZeroIsFatal)
{
    Rng rng(5);
    EXPECT_THROW(rng.uniformInt(std::uint64_t(0)), FatalError);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    const int n = 200000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianShifted)
{
    Rng rng(17);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, GammaMeanMatchesShape)
{
    Rng rng(19);
    const int n = 100000;
    for (double shape : {0.5, 1.0, 3.0, 9.0}) {
        double sum = 0.0;
        for (int i = 0; i < n; ++i)
            sum += rng.gamma(shape);
        EXPECT_NEAR(sum / n, shape, 0.05 * shape + 0.02)
            << "shape " << shape;
    }
}

TEST(Rng, GammaRejectsNonPositiveShape)
{
    Rng rng(19);
    EXPECT_THROW(rng.gamma(0.0), FatalError);
    EXPECT_THROW(rng.gamma(-1.0), FatalError);
}

TEST(Rng, BetaStaysInUnitIntervalWithRightMean)
{
    Rng rng(23);
    const int n = 50000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.beta(2.0, 5.0);
        EXPECT_GT(x, 0.0);
        EXPECT_LT(x, 1.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, 2.0 / 7.0, 0.01);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(29);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (rng.bernoulli(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, DiscreteFollowsWeights)
{
    Rng rng(31);
    std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
    std::vector<int> counts(4, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.discrete(weights)];
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / double(n), 0.3, 0.01);
    EXPECT_NEAR(counts[3] / double(n), 0.6, 0.01);
}

TEST(Rng, DiscreteRejectsBadWeights)
{
    Rng rng(31);
    std::vector<double> empty;
    EXPECT_THROW(rng.discrete(empty), FatalError);
    std::vector<double> zeros{0.0, 0.0};
    EXPECT_THROW(rng.discrete(zeros), FatalError);
    std::vector<double> negative{1.0, -1.0};
    EXPECT_THROW(rng.discrete(negative), FatalError);
}

TEST(Rng, PermutationIsPermutation)
{
    Rng rng(37);
    const auto perm = rng.permutation(100);
    std::vector<std::size_t> sorted(perm);
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i)
        EXPECT_EQ(sorted[i], i);
}

TEST(Rng, PermutationShuffles)
{
    Rng rng(41);
    const auto a = rng.permutation(50);
    const auto b = rng.permutation(50);
    EXPECT_NE(a, b);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(43);
    Rng child = parent.split();
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (parent() == child())
            ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Rng, ShuffleKeepsElements)
{
    Rng rng(47);
    std::vector<int> xs{1, 2, 3, 4, 5, 6, 7, 8};
    auto copy = xs;
    rng.shuffle(copy);
    std::sort(copy.begin(), copy.end());
    EXPECT_EQ(copy, xs);
}

} // namespace
} // namespace cooper
