/**
 * @file
 * Unit tests for the deterministic random number generator.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/error.hh"
#include "util/rng.hh"

namespace cooper {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a() == b())
            ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedWorks)
{
    Rng rng(0);
    EXPECT_NE(rng(), 0u); // splitmix expansion avoids the zero state
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double acc = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        acc += rng.uniform();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-2.5, 7.5);
        EXPECT_GE(u, -2.5);
        EXPECT_LT(u, 7.5);
    }
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(6));
    EXPECT_EQ(seen.size(), 6u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 5u);
}

TEST(Rng, UniformIntInclusiveRange)
{
    Rng rng(5);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(-2, 2));
    EXPECT_EQ(seen.size(), 5u);
    EXPECT_EQ(*seen.begin(), -2);
    EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, UniformIntZeroIsFatal)
{
    Rng rng(5);
    EXPECT_THROW(rng.uniformInt(std::uint64_t(0)), FatalError);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    const int n = 200000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianShifted)
{
    Rng rng(17);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, GammaMeanMatchesShape)
{
    Rng rng(19);
    const int n = 100000;
    for (double shape : {0.5, 1.0, 3.0, 9.0}) {
        double sum = 0.0;
        for (int i = 0; i < n; ++i)
            sum += rng.gamma(shape);
        EXPECT_NEAR(sum / n, shape, 0.05 * shape + 0.02)
            << "shape " << shape;
    }
}

TEST(Rng, GammaRejectsNonPositiveShape)
{
    Rng rng(19);
    EXPECT_THROW(rng.gamma(0.0), FatalError);
    EXPECT_THROW(rng.gamma(-1.0), FatalError);
}

TEST(Rng, BetaStaysInUnitIntervalWithRightMean)
{
    Rng rng(23);
    const int n = 50000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.beta(2.0, 5.0);
        EXPECT_GT(x, 0.0);
        EXPECT_LT(x, 1.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, 2.0 / 7.0, 0.01);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(29);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (rng.bernoulli(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, DiscreteFollowsWeights)
{
    Rng rng(31);
    std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
    std::vector<int> counts(4, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.discrete(weights)];
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / double(n), 0.3, 0.01);
    EXPECT_NEAR(counts[3] / double(n), 0.6, 0.01);
}

TEST(Rng, DiscreteRejectsBadWeights)
{
    Rng rng(31);
    std::vector<double> empty;
    EXPECT_THROW(rng.discrete(empty), FatalError);
    std::vector<double> zeros{0.0, 0.0};
    EXPECT_THROW(rng.discrete(zeros), FatalError);
    std::vector<double> negative{1.0, -1.0};
    EXPECT_THROW(rng.discrete(negative), FatalError);
}

TEST(Rng, PermutationIsPermutation)
{
    Rng rng(37);
    const auto perm = rng.permutation(100);
    std::vector<std::size_t> sorted(perm);
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i)
        EXPECT_EQ(sorted[i], i);
}

TEST(Rng, PermutationShuffles)
{
    Rng rng(41);
    const auto a = rng.permutation(50);
    const auto b = rng.permutation(50);
    EXPECT_NE(a, b);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(43);
    Rng child = parent.split();
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (parent() == child())
            ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Rng, SubstreamIsReproducible)
{
    const Rng rng(51);
    for (std::uint64_t id : {0ULL, 1ULL, 42ULL, ~0ULL}) {
        Rng a = rng.substream(id);
        Rng b = rng.substream(id);
        for (int i = 0; i < 100; ++i)
            EXPECT_EQ(a(), b()) << "substream " << id;
    }
}

TEST(Rng, SubstreamDoesNotAdvanceParent)
{
    Rng with(53);
    Rng without(53);
    (void)with.substream(9);
    (void)with.substream(10);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(with(), without());
}

TEST(Rng, DistinctSubstreamsDoNotOverlap)
{
    // 10 substreams x 1000 draws: all 64-bit outputs distinct, so no
    // stream is a shifted copy of another (a birthday collision among
    // 10^4 uniform 64-bit values is ~1e-12).
    const Rng rng(57);
    std::set<std::uint64_t> seen;
    const int streams = 10, draws = 1000;
    for (int s = 0; s < streams; ++s) {
        Rng sub = rng.substream(static_cast<std::uint64_t>(s));
        for (int i = 0; i < draws; ++i)
            seen.insert(sub());
    }
    EXPECT_EQ(seen.size(),
              static_cast<std::size_t>(streams) * draws);
}

TEST(Rng, SubstreamsAreStatisticallyIndependent)
{
    // Means of adjacent substreams should look like independent
    // uniform samples, not echoes of each other.
    const Rng rng(59);
    const int draws = 1000;
    for (int s = 0; s < 5; ++s) {
        Rng a = rng.substream(static_cast<std::uint64_t>(s));
        Rng b = rng.substream(static_cast<std::uint64_t>(s) + 1);
        int equal = 0;
        double cov = 0.0;
        for (int i = 0; i < draws; ++i) {
            const double ua = a.uniform();
            const double ub = b.uniform();
            cov += (ua - 0.5) * (ub - 0.5);
            if (ua == ub)
                ++equal;
        }
        EXPECT_EQ(equal, 0);
        EXPECT_NEAR(cov / draws, 0.0, 0.01) << "streams " << s;
    }
}

TEST(Rng, SubstreamDependsOnParentState)
{
    Rng early(61);
    Rng late(61);
    (void)late();
    Rng a = early.substream(3);
    Rng b = late.substream(3);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a() == b())
            ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Rng, StateRoundTripsThroughSerialization)
{
    Rng rng(67);
    for (int i = 0; i < 17; ++i)
        (void)rng();
    const auto saved = rng.state();
    std::vector<std::uint64_t> expected;
    for (int i = 0; i < 50; ++i)
        expected.push_back(rng());

    Rng restored = Rng::fromState(saved);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(restored(), expected[static_cast<std::size_t>(i)]);

    // Substreams are a pure function of state, so they round-trip too.
    Rng sub_a = Rng::fromState(saved).substream(4);
    Rng sub_b = Rng::fromState(saved).substream(4);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(sub_a(), sub_b());
}

TEST(Rng, FromStateRejectsAllZeroState)
{
    EXPECT_THROW(Rng::fromState({0, 0, 0, 0}), FatalError);
}

TEST(Rng, ShuffleKeepsElements)
{
    Rng rng(47);
    std::vector<int> xs{1, 2, 3, 4, 5, 6, 7, 8};
    auto copy = xs;
    rng.shuffle(copy);
    std::sort(copy.begin(), copy.end());
    EXPECT_EQ(copy, xs);
}

} // namespace
} // namespace cooper
