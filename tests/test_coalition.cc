/**
 * @file
 * Differential and property tests for the coalition formation
 * subsystem: structures hold their partition invariants, the shared
 * value function agrees with the interference model, the G = 2
 * blocking-coalition scan is a drop-in for the pairwise blocking
 * scan, formation is bit-identical at any thread count and dominates
 * packed pairs at equal capacity, and the online driver's coalition
 * mode checkpoints and resumes exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "coalition/blocking_coalition.hh"
#include "coalition/formation.hh"
#include "coalition/prefs.hh"
#include "coalition/structure.hh"
#include "coalition/value.hh"
#include "core/experiment.hh"
#include "io/serialize.hh"
#include "matching/blocking.hh"
#include "matching/stable_roommates.hh"
#include "online/churn.hh"
#include "online/driver.hh"
#include "online/events.hh"
#include "sim/interference.hh"
#include "util/error.hh"
#include "util/rng.hh"
#include "workload/catalog.hh"

namespace cooper {
namespace {

struct Fixture
{
    Catalog catalog = Catalog::paperTableI();
    InterferenceModel model{catalog};
};

/** A sampled population plus its believed table and agent types. */
struct Population
{
    ColocationInstance instance;
    DisutilityTable believed;
    std::vector<JobTypeId> types;
};

Population
makePopulation(const Fixture &fx, std::size_t agents,
               std::uint64_t seed)
{
    Rng rng(seed);
    ColocationInstance instance = sampleInstance(
        fx.catalog, fx.model, agents, MixKind::Uniform, rng);
    DisutilityTable believed = instance.believedTable();
    std::vector<JobTypeId> types;
    types.reserve(agents);
    for (AgentId a = 0; a < agents; ++a)
        types.push_back(instance.typeOf(a));
    return {std::move(instance), std::move(believed),
            std::move(types)};
}

TEST(CoalitionStructure, PartitionInvariantsHold)
{
    CoalitionStructure s(6);
    s.addCoalition({2, 0});
    s.addCoalition({3, 4, 5});
    EXPECT_TRUE(s.valid(3));
    EXPECT_EQ(s.coalitionOf(0), s.coalitionOf(2));
    EXPECT_EQ(s.coalitionOf(1), kNoCoalition);
    EXPECT_EQ(s.othersOf(4), (std::vector<AgentId>{3, 5}));
    EXPECT_EQ(s.machines(), 3u); // {0,2}, {3,4,5}, lone 1

    // A member may not join twice.
    EXPECT_THROW(s.addCoalition({1, 2}), FatalError);

    // Removing down to one member dissolves the coalition.
    s.removeAgent(0);
    EXPECT_EQ(s.coalitionOf(2), kNoCoalition);

    // Deviation carves members out of their current coalitions.
    s.deviate({2, 4});
    EXPECT_EQ(s.coalitionOf(2), s.coalitionOf(4));
    EXPECT_EQ(s.othersOf(3), (std::vector<AgentId>{5}));

    s.canonicalize();
    EXPECT_TRUE(s.valid(3));
    ASSERT_EQ(s.coalitions().size(), 2u);
    EXPECT_EQ(s.coalitions()[0], (std::vector<AgentId>{2, 4}));
    EXPECT_EQ(s.coalitions()[1], (std::vector<AgentId>{3, 5}));
}

TEST(CoalitionStructure, PackMatchingRespectsTheMachineBudget)
{
    Matching matching(10);
    matching.pair(0, 1);
    matching.pair(2, 3);
    matching.pair(4, 5);
    matching.pair(6, 7);

    for (const std::size_t g : {2u, 3u, 4u}) {
        const CoalitionStructure packed =
            CoalitionStructure::packMatching(matching, g);
        EXPECT_TRUE(packed.valid(g)) << "G=" << g;
        EXPECT_LE(packed.machines(), (10 + g - 1) / g) << "G=" << g;
        // Every agent is accounted for exactly once.
        std::size_t grouped = 0;
        for (const auto &group : packed.coalitions())
            grouped += group.size();
        for (AgentId a = 0; a < 10; ++a)
            if (packed.coalitionOf(a) == kNoCoalition)
                ++grouped;
        EXPECT_EQ(grouped, 10u) << "G=" << g;
    }

    // At G = 2 packing adds nothing beyond lifting the pairs (the
    // two unmatched agents share the one remaining machine).
    const CoalitionStructure pairs =
        CoalitionStructure::packMatching(matching, 2);
    EXPECT_EQ(pairs.coalitionOf(0), pairs.coalitionOf(1));
    EXPECT_EQ(pairs.coalitionOf(8), pairs.coalitionOf(9));
}

TEST(CoalitionValue, MemberPenaltyMatchesTheModel)
{
    const Fixture fx;
    const JobTypeId a = 0, b = 5, c = 11;
    const std::vector<JobTypeId> none;
    EXPECT_DOUBLE_EQ(coalitionMemberPenalty(fx.model, a, none), 0.0);

    const std::vector<JobTypeId> one{b};
    EXPECT_DOUBLE_EQ(coalitionMemberPenalty(fx.model, a, one),
                     fx.model.penalty(a, b));

    const std::vector<JobTypeId> two{b, c};
    EXPECT_DOUBLE_EQ(coalitionMemberPenalty(fx.model, a, two),
                     fx.model.groupPenalty(a, two));

    // v(S) sums the member penalties; the per-member vector agrees.
    const std::vector<JobTypeId> members{a, b, c};
    const std::vector<double> each =
        coalitionMemberPenalties(fx.model, members);
    ASSERT_EQ(each.size(), 3u);
    EXPECT_DOUBLE_EQ(coalitionValue(fx.model, members),
                     each[0] + each[1] + each[2]);
}

TEST(CoalitionPrefs, AdditiveExtensionRestrictsToPairs)
{
    const Fixture fx;
    const Population pop = makePopulation(fx, 12, 3);
    const CoalitionPreferences prefs(pop.believed);

    const std::vector<AgentId> one{3};
    EXPECT_DOUBLE_EQ(prefs.believedPenalty(0, one),
                     pop.believed(0, 3));
    const std::vector<AgentId> two{3, 7};
    EXPECT_DOUBLE_EQ(prefs.believedPenalty(0, two),
                     pop.believed(0, 3) + pop.believed(0, 7));

    // Ranked candidates ascend by pairwise believed cost.
    const std::vector<AgentId> ranked = prefs.rankedCandidates(0, 0);
    ASSERT_EQ(ranked.size(), 11u);
    for (std::size_t i = 1; i < ranked.size(); ++i)
        EXPECT_LE(pop.believed(0, ranked[i - 1]),
                  pop.believed(0, ranked[i]));
}

TEST(CoalitionBlocking, PairScanMatchesThePairwiseBlockingScan)
{
    const Fixture fx;
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
        const Population pop = makePopulation(fx, 20, seed);
        // An arbitrary full matching: 0-1, 2-3, ... — plenty of
        // blocking pairs to count.
        Matching matching(20);
        for (AgentId a = 0; a + 1 < 20; a += 2)
            matching.pair(a, a + 1);

        const CoalitionStructure structure =
            CoalitionStructure::fromMatching(matching);
        const CoalitionPreferences prefs(pop.believed);
        CoalitionScanConfig scan;
        scan.maxSize = 2;
        const std::size_t pairwise =
            countBlockingPairs(matching, pop.believed, 0.0);
        EXPECT_EQ(countBlockingCoalitions(structure, prefs, scan),
                  pairwise)
            << "seed " << seed;

        // And the count is thread-count independent.
        scan.threads = 4;
        EXPECT_EQ(countBlockingCoalitions(structure, prefs, scan),
                  pairwise);
    }
}

TEST(CoalitionFormation, BitIdenticalAcrossThreadCounts)
{
    const Fixture fx;
    const Population pop = makePopulation(fx, 30, 7);
    const Rng rng(99);

    for (const std::size_t g : {2u, 3u, 4u}) {
        FormationConfig config;
        config.groupSize = g;
        config.shapleySamples = 32;
        config.threads = 1;
        const FormationResult serial = formCoalitions(
            pop.types, pop.believed, fx.model, config, rng);
        for (const std::size_t threads : {2u, 8u}) {
            config.threads = threads;
            const FormationResult parallel = formCoalitions(
                pop.types, pop.believed, fx.model, config, rng);
            EXPECT_TRUE(parallel.structure == serial.structure)
                << "G=" << g << " threads=" << threads;
            EXPECT_EQ(parallel.rounds, serial.rounds);
            EXPECT_EQ(parallel.blockingAfter, serial.blockingAfter);
            // Exact equality — attribution must not drift either.
            EXPECT_EQ(parallel.shapleyShares, serial.shapleyShares);
            EXPECT_EQ(parallel.truePenalties, serial.truePenalties);
        }
    }
}

TEST(CoalitionFormation, PairFormationStableWhereverRoommatesIs)
{
    const Fixture fx;
    const Rng rng(5);
    std::size_t stable_seeds = 0;
    for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        const Population pop = makePopulation(fx, 24, seed);
        const CoalitionPreferences prefs(pop.believed);
        const RoommatesResult sr =
            adaptedRoommates(prefs.pairProfile(), pop.believed);
        if (!sr.perfectlyStable)
            continue;
        ++stable_seeds;

        FormationConfig config;
        config.shapleySamples = 0;
        const FormationResult formed = formCoalitions(
            pop.types, pop.believed, fx.model, config, rng);
        EXPECT_TRUE(formed.coreStable) << "seed " << seed;
        EXPECT_EQ(formed.blockingAfter, 0u) << "seed " << seed;
        EXPECT_TRUE(formed.structure ==
                    CoalitionStructure::fromMatching(sr.matching))
            << "seed " << seed;
    }
    // The adapted matcher finds a perfectly stable matching on most
    // sampled populations; the property must not hold vacuously.
    EXPECT_GE(stable_seeds, 1u);
}

TEST(CoalitionFormation, DominatesPackedPairsAtEqualCapacity)
{
    const Fixture fx;
    const Rng rng(17);
    for (const std::uint64_t seed : {2u, 6u}) {
        const Population pop = makePopulation(fx, 24, seed);
        const CoalitionPreferences prefs(pop.believed);
        const RoommatesResult sr =
            adaptedRoommates(prefs.pairProfile(), pop.believed);

        for (const std::size_t g : {3u, 4u}) {
            FormationConfig config;
            config.groupSize = g;
            config.shapleySamples = 0;
            const FormationResult formed = formCoalitions(
                pop.types, pop.believed, fx.model, config, rng);
            EXPECT_TRUE(formed.structure.valid(g));
            EXPECT_LE(formed.structure.machines(), (24 + g - 1) / g);

            CoalitionScanConfig scan;
            scan.maxSize = g;
            const std::size_t packed_blocking = countBlockingCoalitions(
                CoalitionStructure::packMatching(sr.matching, g), prefs,
                scan);
            EXPECT_LE(formed.blockingAfter, packed_blocking)
                << "seed " << seed << " G=" << g;
            EXPECT_LE(formed.blockingAfter, formed.blockingBefore);
        }
    }
}

TEST(CoalitionFormation, WarmStartOverBudgetIsRepaired)
{
    const Fixture fx;
    const Population pop = makePopulation(fx, 6, 4);
    const Rng rng(8);

    // Three pairs need three machines; at G = 3 the budget is two.
    CoalitionStructure carried(6);
    carried.addCoalition({0, 1});
    carried.addCoalition({2, 3});
    carried.addCoalition({4, 5});

    FormationConfig config;
    config.groupSize = 3;
    config.shapleySamples = 0;
    const FormationResult formed = formCoalitions(
        pop.types, pop.believed, fx.model, config, rng, &carried);
    EXPECT_TRUE(formed.structure.valid(3));
    EXPECT_LE(formed.structure.machines(), 2u);
}

// --- Online driver, --policy coalition ---------------------------

ChurnTrace
makeTrace(const Catalog &catalog, std::size_t arrivals,
          std::uint64_t seed)
{
    ChurnConfig churn;
    churn.arrivals = arrivals;
    churn.initialJobs = 12;
    churn.meanInterarrivalTicks = 6.0;
    churn.meanLifetimeTicks = 400.0;
    Rng rng(seed);
    return generateChurnTrace(catalog, churn, rng);
}

FrameworkConfig
coalitionConfig(std::size_t group_size)
{
    FrameworkConfig config;
    config.policy = "coalition";
    config.execution.online.groupSize = group_size;
    config.execution.online.admitPerEpoch = 64;
    config.execution.online.maxQueueDepth = 0;
    return config;
}

std::string
summaryOf(const OnlineReport &report)
{
    std::ostringstream out;
    writeOnlineSummary(out, report);
    return out.str();
}

TEST(OnlineDriverCoalition, SameTraceSameSummaryAtAnyThreadCount)
{
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 150, 2);

    std::vector<std::string> summaries;
    for (const std::size_t threads : {1u, 2u, 8u}) {
        FrameworkConfig config = coalitionConfig(3);
        config.execution.threads = threads;
        OnlineDriver driver(fx.catalog, fx.model, config, 17);
        summaries.push_back(summaryOf(driver.run(trace)));
    }
    EXPECT_EQ(summaries[0], summaries[1]);
    EXPECT_EQ(summaries[0], summaries[2]);
}

TEST(OnlineDriverCoalition, GroupsRespectTheCapAndPartitionLiveJobs)
{
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 150, 3);
    FrameworkConfig config = coalitionConfig(3);
    OnlineDriver driver(fx.catalog, fx.model, config, 21);
    const OnlineReport report = driver.run(trace);

    std::vector<JobUid> seen;
    for (const auto &group : report.finalGroups) {
        EXPECT_GE(group.size(), 2u);
        EXPECT_LE(group.size(), 3u);
        for (std::size_t i = 0; i < group.size(); ++i) {
            if (i > 0) {
                EXPECT_LT(group[i - 1], group[i]);
            }
            seen.push_back(group[i]);
        }
    }
    std::sort(seen.begin(), seen.end());
    EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) ==
                seen.end());
}

TEST(OnlineDriverCoalition, MidRunCheckpointResumesExactly)
{
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 150, 9);
    const FrameworkConfig config = coalitionConfig(3);

    OnlineDriver whole(fx.catalog, fx.model, config, 10);
    const OnlineReport whole_report = whole.run(trace);

    const Tick cut = 10 * config.execution.online.epochTicks;
    std::vector<ChurnEvent> head;
    for (const ChurnEvent &event : trace.events())
        if (event.tick < cut)
            head.push_back(event);
    ASSERT_FALSE(head.empty());
    ASSERT_LT(head.size(), trace.size());

    OnlineDriver prefix(fx.catalog, fx.model, config, 10);
    prefix.run(ChurnTrace(std::move(head)));
    ASSERT_LE(prefix.clockTick(), cut);

    // Round-trip the checkpoint through the v4 text format, as the
    // CLI does, so the groups section itself is under test.
    std::stringstream checkpoint;
    writeOnlineState(checkpoint, prefix.snapshot());
    OnlineDriver resumed(fx.catalog, fx.model, config, 10);
    resumed.restore(readOnlineState(checkpoint));
    const OnlineReport tail_report =
        resumed.run(trace.suffix(resumed.clockTick()));

    EXPECT_EQ(tail_report.totalArrivals, whole_report.totalArrivals);
    EXPECT_EQ(tail_report.finalGroups, whole_report.finalGroups);

    std::ostringstream whole_state, resumed_state;
    writeOnlineState(whole_state, whole.snapshot());
    writeOnlineState(resumed_state, resumed.snapshot());
    EXPECT_EQ(whole_state.str(), resumed_state.str());
}

TEST(OnlineDriverCoalition, RestoreRejectsHostileGroupStates)
{
    const Fixture fx;
    const ChurnTrace trace = makeTrace(fx.catalog, 60, 11);
    const FrameworkConfig config = coalitionConfig(2);
    OnlineDriver source(fx.catalog, fx.model, config, 12);
    source.run(trace);
    const OnlineState state = source.snapshot();

    // A group larger than the configured cap must not restore.
    if (state.live.size() >= 3) {
        OnlineState oversized = state;
        oversized.groups = {{state.live[0].uid, state.live[1].uid,
                             state.live[2].uid}};
        OnlineDriver target(fx.catalog, fx.model, config, 12);
        EXPECT_THROW(target.restore(oversized), FatalError);
    }

    // A grouped uid that is not live must not restore.
    OnlineState ghost = state;
    ghost.groups = {{999991, 999992}};
    OnlineDriver target(fx.catalog, fx.model, config, 12);
    EXPECT_THROW(target.restore(ghost), FatalError);
}

TEST(OnlineDriverCoalition, RejectsDegenerateGroupSize)
{
    const Fixture fx;
    FrameworkConfig config = coalitionConfig(1);
    EXPECT_THROW(OnlineDriver(fx.catalog, fx.model, config, 1),
                 FatalError);
    config = coalitionConfig(21);
    EXPECT_THROW(OnlineDriver(fx.catalog, fx.model, config, 1),
                 FatalError);
}

} // namespace
} // namespace cooper
