/**
 * @file
 * Unit tests for the type-level and cluster-level matching policies
 * (Section VIII extension).
 */

#include <gtest/gtest.h>

#include "core/approx_policies.hh"
#include "core/experiment.hh"
#include "matching/blocking.hh"
#include "util/error.hh"

namespace cooper {
namespace {

class ApproxPolicyTest : public ::testing::Test
{
  protected:
    Catalog catalog_ = Catalog::paperTableI();
    InterferenceModel model_{catalog_};

    ColocationInstance
    makeInstance(std::size_t n, std::uint64_t seed = 1)
    {
        Rng rng(seed);
        return sampleInstance(catalog_, model_, n, MixKind::Uniform,
                              rng);
    }
};

TEST_F(ApproxPolicyTest, TypeMatchProducesMaximalMatching)
{
    const auto instance = makeInstance(100);
    Rng rng(1);
    TypeMatchPolicy tm;
    const Matching m = tm.assign(instance, rng);
    EXPECT_TRUE(m.consistent());
    EXPECT_EQ(m.pairCount(), 50u);
}

TEST_F(ApproxPolicyTest, ClusterMatchProducesMaximalMatching)
{
    const auto instance = makeInstance(101);
    Rng rng(2);
    ClusterMatchPolicy cm(6);
    const Matching m = cm.assign(instance, rng);
    EXPECT_TRUE(m.consistent());
    EXPECT_EQ(m.pairCount(), 50u); // one agent left alone
}

TEST_F(ApproxPolicyTest, NamesAndValidation)
{
    EXPECT_EQ(TypeMatchPolicy().name(), "TM");
    EXPECT_EQ(ClusterMatchPolicy().name(), "CM");
    EXPECT_EQ(ClusterMatchPolicy(3).clusters(), 3u);
    EXPECT_THROW(ClusterMatchPolicy(0), FatalError);
}

TEST_F(ApproxPolicyTest, TypeMatchDrainsCheapestClassPairFirst)
{
    // With only correlation and swaptions agents, the cheapest class
    // colocation is (swaptions, swaptions): the greedy drain pairs
    // all swaptions together, leaving correlation to pair internally.
    const JobTypeId corr = catalog_.jobByName("correlation").id;
    const JobTypeId swap = catalog_.jobByName("swaptions").id;
    std::vector<JobTypeId> types;
    for (int i = 0; i < 10; ++i) {
        types.push_back(corr);
        types.push_back(swap);
    }
    auto instance =
        ColocationInstance::oracular(catalog_, types, model_);
    Rng rng(3);
    TypeMatchPolicy tm;
    const Matching m = tm.assign(instance, rng);
    EXPECT_TRUE(m.isPerfect());
    for (const auto &[a, b] : m.pairs())
        EXPECT_EQ(instance.typeOf(a), instance.typeOf(b));
}

TEST_F(ApproxPolicyTest, TypeMatchMoreStableThanGreedy)
{
    const auto instance = makeInstance(300, 7);
    Rng rng_tm(1), rng_gr(1);
    const Matching tm = TypeMatchPolicy().assign(instance, rng_tm);
    const Matching gr = GreedyPolicy().assign(instance, rng_gr);
    const DisutilityFn d = [&](AgentId a, AgentId b) {
        return instance.trueDisutility(a, b);
    };
    // Type-level matching approximates stable matching: fewer
    // blocking pairs than the contention-greedy baseline.
    EXPECT_LT(countBlockingPairs(tm, d, 0.01),
              countBlockingPairs(gr, d, 0.01));
}

TEST_F(ApproxPolicyTest, ClusterMatchFairnessBeatsGreedy)
{
    const auto instance = makeInstance(400, 9);
    Rng rng_cm(1), rng_gr(1);
    const Matching cm = ClusterMatchPolicy().assign(instance, rng_cm);
    const Matching gr = GreedyPolicy().assign(instance, rng_gr);
    const double cm_fair =
        fairness(aggregateByType(instance, cm)).rankCorrelation;
    const double gr_fair =
        fairness(aggregateByType(instance, gr)).rankCorrelation;
    EXPECT_GT(cm_fair, gr_fair);
}

TEST_F(ApproxPolicyTest, DeterministicPerSeed)
{
    const auto instance = makeInstance(60, 11);
    for (int variant = 0; variant < 2; ++variant) {
        Rng rng_a(5), rng_b(5);
        std::unique_ptr<ColocationPolicy> policy;
        if (variant == 0)
            policy = std::make_unique<TypeMatchPolicy>();
        else
            policy = std::make_unique<ClusterMatchPolicy>();
        const Matching a = policy->assign(instance, rng_a);
        const Matching b = policy->assign(instance, rng_b);
        EXPECT_EQ(a.pairs(), b.pairs()) << policy->name();
    }
}

} // namespace
} // namespace cooper
