/**
 * @file
 * Unit tests for the epoch scheduler.
 */

#include <gtest/gtest.h>

#include "core/scheduler.hh"
#include "util/error.hh"

namespace cooper {
namespace {

class SchedulerTest : public ::testing::Test
{
  protected:
    Catalog catalog_ = Catalog::paperTableI();
    InterferenceModel model_{catalog_};

    SchedulerConfig
    baseConfig()
    {
        SchedulerConfig config;
        config.policy = "GR";
        config.epochSec = 300.0;
        config.arrivalRatePerSec = 0.05;
        config.machines = 20;
        return config;
    }
};

TEST_F(SchedulerTest, ArrivalCountMatchesRate)
{
    EpochScheduler scheduler(catalog_, model_, baseConfig(), 1);
    const ScheduleTrace trace = scheduler.run(20000.0, 0.0);
    // Expect ~ rate * horizon = 1000 arrivals.
    EXPECT_NEAR(static_cast<double>(trace.jobs.size()), 1000.0, 150.0);
    for (const auto &job : trace.jobs) {
        EXPECT_GE(job.arrivalSec, 0.0);
        EXPECT_LT(job.arrivalSec, 20000.0);
    }
}

TEST_F(SchedulerTest, JobsStartOnlyAfterArrival)
{
    EpochScheduler scheduler(catalog_, model_, baseConfig(), 2);
    const ScheduleTrace trace = scheduler.run(10000.0, 20000.0);
    for (const auto &job : trace.jobs) {
        if (job.started()) {
            EXPECT_GE(job.startSec, job.arrivalSec);
            EXPECT_GT(job.endSec, job.startSec);
        }
    }
}

TEST_F(SchedulerTest, DrainEmptiesQueueWhenUnderloaded)
{
    SchedulerConfig config = baseConfig();
    config.arrivalRatePerSec = 0.02; // light load
    EpochScheduler scheduler(catalog_, model_, config, 3);
    const ScheduleTrace trace = scheduler.run(10000.0, 30000.0);
    // At most one job (an odd leftover with nobody to pair with) may
    // remain unstarted after a long drain.
    std::size_t unstarted = 0;
    for (const auto &job : trace.jobs)
        if (!job.started())
            ++unstarted;
    EXPECT_LE(unstarted, 1u);
}

TEST_F(SchedulerTest, OverloadGrowsQueue)
{
    SchedulerConfig light = baseConfig();
    light.arrivalRatePerSec = 0.01;
    SchedulerConfig heavy = baseConfig();
    heavy.arrivalRatePerSec = 0.5;
    heavy.machines = 5;

    EpochScheduler a(catalog_, model_, light, 4);
    EpochScheduler b(catalog_, model_, heavy, 4);
    const ScheduleTrace ta = a.run(10000.0);
    const ScheduleTrace tb = b.run(10000.0);
    EXPECT_LT(ta.epochs.back().queued + 5, tb.epochs.back().queued);
    EXPECT_LT(ta.meanWaitSec, tb.meanWaitSec);
}

TEST_F(SchedulerTest, UtilizationBounded)
{
    EpochScheduler scheduler(catalog_, model_, baseConfig(), 5);
    const ScheduleTrace trace = scheduler.run(20000.0, 5000.0);
    EXPECT_GT(trace.utilization, 0.0);
    EXPECT_LE(trace.utilization, 1.0);
}

TEST_F(SchedulerTest, MachinesNeverOversubscribed)
{
    SchedulerConfig config = baseConfig();
    config.machines = 3;
    config.arrivalRatePerSec = 0.2; // saturate
    EpochScheduler scheduler(catalog_, model_, config, 6);
    const ScheduleTrace trace = scheduler.run(10000.0, 10000.0);
    // No two pairs may overlap on the same machine.
    std::vector<std::pair<double, double>> busy[3];
    for (const auto &job : trace.jobs) {
        if (!job.started())
            continue;
        ASSERT_LT(job.machine, 3u);
        busy[job.machine].emplace_back(job.startSec, job.endSec);
    }
    for (auto &intervals : busy) {
        std::sort(intervals.begin(), intervals.end());
        // Jobs come in pairs sharing identical intervals; collapse
        // duplicates before checking overlap.
        for (std::size_t i = 2; i < intervals.size(); i += 2)
            EXPECT_GE(intervals[i].first, intervals[i - 1].second - 1e-9);
    }
}

TEST_F(SchedulerTest, EpochSummariesConserveJobs)
{
    EpochScheduler scheduler(catalog_, model_, baseConfig(), 7);
    const ScheduleTrace trace = scheduler.run(15000.0, 5000.0);
    std::size_t arrivals = 0, dispatched = 0;
    for (const auto &epoch : trace.epochs) {
        arrivals += epoch.arrivals;
        dispatched += epoch.dispatched;
    }
    EXPECT_EQ(arrivals, trace.jobs.size());
    EXPECT_EQ(dispatched + trace.epochs.back().queued,
              trace.jobs.size());
}

TEST_F(SchedulerTest, ZeroArrivalRateProducesNoJobs)
{
    SchedulerConfig config = baseConfig();
    config.arrivalRatePerSec = 0.0;
    EpochScheduler scheduler(catalog_, model_, config, 8);
    const ScheduleTrace trace = scheduler.run(5000.0);
    EXPECT_TRUE(trace.jobs.empty());
    EXPECT_DOUBLE_EQ(trace.utilization, 0.0);
}

TEST_F(SchedulerTest, BadConfigFatal)
{
    SchedulerConfig config = baseConfig();
    config.epochSec = 0.0;
    EXPECT_THROW(EpochScheduler(catalog_, model_, config, 1),
                 FatalError);
    config = baseConfig();
    config.machines = 0;
    EXPECT_THROW(EpochScheduler(catalog_, model_, config, 1),
                 FatalError);
    EpochScheduler ok(catalog_, model_, baseConfig(), 1);
    EXPECT_THROW(ok.run(-1.0), FatalError);
    EXPECT_THROW(ok.run(10.0, -1.0), FatalError);
}

TEST_F(SchedulerTest, StablePolicyWorksInScheduler)
{
    SchedulerConfig config = baseConfig();
    config.policy = "SMR";
    EpochScheduler scheduler(catalog_, model_, config, 9);
    const ScheduleTrace trace = scheduler.run(10000.0, 10000.0);
    std::size_t started = 0;
    for (const auto &job : trace.jobs)
        if (job.started())
            ++started;
    EXPECT_GT(started, trace.jobs.size() / 2);
}

} // namespace
} // namespace cooper
