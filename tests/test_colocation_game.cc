/**
 * @file
 * Unit tests for the colocation game's characteristic function and
 * Shapley attribution.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "game/colocation_game.hh"
#include "util/error.hh"

namespace cooper {
namespace {

class ColocationGameTest : public ::testing::Test
{
  protected:
    Catalog catalog_ = Catalog::paperTableI();
    InterferenceModel model_{catalog_};

    JobTypeId id(const std::string &name) const
    {
        return catalog_.jobByName(name).id;
    }
};

TEST_F(ColocationGameTest, SingletonsAndEmptyAreFree)
{
    const auto v = colocationGame(
        model_, {id("correlation"), id("svm"), id("dedup")});
    EXPECT_DOUBLE_EQ(v(0b000), 0.0);
    EXPECT_DOUBLE_EQ(v(0b001), 0.0);
    EXPECT_DOUBLE_EQ(v(0b010), 0.0);
    EXPECT_DOUBLE_EQ(v(0b100), 0.0);
}

TEST_F(ColocationGameTest, PairValueIsMutualPenalty)
{
    const JobTypeId a = id("correlation");
    const JobTypeId b = id("svm");
    const auto v = colocationGame(model_, {a, b});
    EXPECT_NEAR(v(0b11),
                model_.penalty(a, b) + model_.penalty(b, a), 1e-12);
}

TEST_F(ColocationGameTest, ValueGrowsWithCoalitionSize)
{
    const auto v = colocationGame(
        model_,
        {id("correlation"), id("naive"), id("decision"), id("svm")});
    EXPECT_LT(v(0b0011), v(0b0111));
    EXPECT_LT(v(0b0111), v(0b1111));
}

TEST_F(ColocationGameTest, AttributionIsEfficient)
{
    std::vector<JobTypeId> jobs{id("correlation"), id("svm"),
                                id("dedup"), id("swaptions")};
    const auto v = colocationGame(model_, jobs);
    const auto phi = shapleyAttribution(model_, jobs);
    ASSERT_EQ(phi.size(), 4u);
    const double total = std::accumulate(phi.begin(), phi.end(), 0.0);
    EXPECT_NEAR(total, v(0b1111), 1e-9);
}

TEST_F(ColocationGameTest, ContentiousJobsOweMore)
{
    // Fair attribution: correlation (25 GB/s) owes a larger share
    // than swaptions (0.07 GB/s) in any coalition containing both.
    const auto phi = shapleyAttribution(
        model_, {id("swaptions"), id("kmeans"), id("svm"),
                 id("correlation")});
    EXPECT_LT(phi[0], phi[2]);
    EXPECT_LT(phi[2], phi[3]);
}

TEST_F(ColocationGameTest, IdenticalJobsGetEqualShares)
{
    const auto phi = shapleyAttribution(
        model_, {id("svm"), id("svm"), id("correlation")});
    EXPECT_NEAR(phi[0], phi[1], 1e-9);
}

TEST_F(ColocationGameTest, SharesAreNonNegative)
{
    const auto phi = shapleyAttribution(
        model_, {id("dedup"), id("correlation"), id("vips"),
                 id("canneal"), id("streamc")});
    for (double share : phi)
        EXPECT_GE(share, 0.0);
}

TEST_F(ColocationGameTest, InputValidation)
{
    EXPECT_THROW(colocationGame(model_, {}), FatalError);
    EXPECT_THROW(colocationGame(model_, {999}), FatalError);
    EXPECT_THROW(shapleyAttribution(model_, {0}), FatalError);
    std::vector<JobTypeId> too_many(17, 0);
    EXPECT_THROW(shapleyAttribution(model_, too_many), FatalError);
}

} // namespace
} // namespace cooper
