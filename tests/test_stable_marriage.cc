/**
 * @file
 * Unit tests for Gale-Shapley stable marriage, including the paper's
 * Figure 5 worked example.
 */

#include <gtest/gtest.h>

#include "matching/stable_marriage.hh"
#include "util/rng.hh"

namespace cooper {
namespace {

/** Random complete preference profile for n agents over m candidates. */
PreferenceProfile
randomPrefs(std::size_t n, std::size_t m, Rng &rng)
{
    std::vector<std::vector<AgentId>> lists(n);
    for (std::size_t i = 0; i < n; ++i) {
        lists[i].resize(m);
        for (std::size_t j = 0; j < m; ++j)
            lists[i][j] = j;
        rng.shuffle(lists[i]);
    }
    return PreferenceProfile(std::move(lists), m);
}

TEST(StableMarriage, Figure5Example)
{
    // Preferences from Figure 5: m-side proposes to c-side.
    // m1: c1 > c2 > c3     c1: m2 > m3 > m1
    // m2: c3 > c1 > c2     c2: m3 > m1 > m2
    // m3: c1 > c2 > c3     c3: m2 > m1 > m3
    PreferenceProfile proposers({{0, 1, 2}, {2, 0, 1}, {0, 1, 2}}, 3);
    PreferenceProfile acceptors({{1, 2, 0}, {2, 0, 1}, {1, 0, 2}}, 3);

    const MarriageResult result = stableMarriage(proposers, acceptors);
    // Paper's outcome: {m1c2, m2c3, m3c1}.
    EXPECT_EQ(result.proposerPartner[0], 1u);
    EXPECT_EQ(result.proposerPartner[1], 2u);
    EXPECT_EQ(result.proposerPartner[2], 0u);
    EXPECT_EQ(marriageBlockingPairs(proposers, acceptors,
                                    result.proposerPartner),
              0u);
}

TEST(StableMarriage, Figure5ParallelRoundsMatchPaper)
{
    PreferenceProfile proposers({{0, 1, 2}, {2, 0, 1}, {0, 1, 2}}, 3);
    PreferenceProfile acceptors({{1, 2, 0}, {2, 0, 1}, {1, 0, 2}}, 3);
    const MarriageResult result =
        stableMarriageParallel(proposers, acceptors);
    EXPECT_EQ(result.proposerPartner[0], 1u);
    EXPECT_EQ(result.proposerPartner[1], 2u);
    EXPECT_EQ(result.proposerPartner[2], 0u);
    // Figure 5 resolves in two proposal rounds.
    EXPECT_EQ(result.rounds, 2u);
}

TEST(StableMarriage, SingleCouple)
{
    PreferenceProfile proposers({{0}}, 1);
    PreferenceProfile acceptors({{0}}, 1);
    const MarriageResult result = stableMarriage(proposers, acceptors);
    EXPECT_EQ(result.proposerPartner[0], 0u);
}

TEST(StableMarriage, AllSamePreferencesAssortative)
{
    // Every proposer ranks acceptors 0 > 1 > 2; acceptors rank
    // proposers 0 > 1 > 2. Proposer 0 gets acceptor 0, and so on.
    PreferenceProfile proposers(
        {{0, 1, 2}, {0, 1, 2}, {0, 1, 2}}, 3);
    PreferenceProfile acceptors(
        {{0, 1, 2}, {0, 1, 2}, {0, 1, 2}}, 3);
    const MarriageResult result = stableMarriage(proposers, acceptors);
    EXPECT_EQ(result.proposerPartner[0], 0u);
    EXPECT_EQ(result.proposerPartner[1], 1u);
    EXPECT_EQ(result.proposerPartner[2], 2u);
}

TEST(StableMarriage, RandomInstancesAlwaysStable)
{
    Rng rng(123);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n = 2 + rng.uniformInt(std::uint64_t(30));
        const PreferenceProfile proposers = randomPrefs(n, n, rng);
        const PreferenceProfile acceptors = randomPrefs(n, n, rng);
        const MarriageResult result =
            stableMarriage(proposers, acceptors);
        // Everyone is matched and no blocking pair exists.
        for (AgentId m = 0; m < n; ++m)
            EXPECT_NE(result.proposerPartner[m], kUnmatched);
        EXPECT_EQ(marriageBlockingPairs(proposers, acceptors,
                                        result.proposerPartner),
                  0u)
            << "trial " << trial;
    }
}

TEST(StableMarriage, ParallelEqualsSequential)
{
    Rng rng(321);
    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t n = 2 + rng.uniformInt(std::uint64_t(20));
        const PreferenceProfile proposers = randomPrefs(n, n, rng);
        const PreferenceProfile acceptors = randomPrefs(n, n, rng);
        const auto seq = stableMarriage(proposers, acceptors);
        const auto par = stableMarriageParallel(proposers, acceptors);
        EXPECT_EQ(seq.proposerPartner, par.proposerPartner)
            << "trial " << trial;
    }
}

TEST(StableMarriage, ProposerOptimality)
{
    // Classic instance where proposer- and acceptor-optimal matchings
    // differ; Gale-Shapley must return the proposer-optimal one.
    PreferenceProfile proposers({{0, 1}, {1, 0}}, 2);
    PreferenceProfile acceptors({{1, 0}, {0, 1}}, 2);
    const MarriageResult result = stableMarriage(proposers, acceptors);
    EXPECT_EQ(result.proposerPartner[0], 0u); // proposer 0's favorite
    EXPECT_EQ(result.proposerPartner[1], 1u);
}

TEST(StableMarriage, UnbalancedSidesLeaveSomeoneSingle)
{
    PreferenceProfile proposers({{0}, {0}, {0}}, 1);
    PreferenceProfile acceptors({{2, 1, 0}}, 3);
    const MarriageResult result = stableMarriage(proposers, acceptors);
    EXPECT_EQ(result.proposerPartner[2], 0u);
    EXPECT_EQ(result.proposerPartner[0], kUnmatched);
    EXPECT_EQ(result.proposerPartner[1], kUnmatched);
}

TEST(StableMarriage, CountsProposals)
{
    PreferenceProfile proposers({{0, 1}, {0, 1}}, 2);
    PreferenceProfile acceptors({{0, 1}, {0, 1}}, 2);
    const MarriageResult result = stableMarriage(proposers, acceptors);
    EXPECT_GE(result.proposals, 2u);
}

} // namespace
} // namespace cooper
