/**
 * @file
 * Unit tests for the dispatch/cluster simulation.
 */

#include <gtest/gtest.h>

#include "sim/cluster.hh"
#include "util/error.hh"

namespace cooper {
namespace {

class ClusterTest : public ::testing::Test
{
  protected:
    Catalog catalog_ = Catalog::paperTableI();
    InterferenceModel model_{catalog_};

    JobTypeId id(const std::string &name) const
    {
        return catalog_.jobByName(name).id;
    }
};

TEST_F(ClusterTest, ZeroMachinesFatal)
{
    EXPECT_THROW(Cluster(model_, 0), FatalError);
}

TEST_F(ClusterTest, EmptyDispatch)
{
    Cluster cluster(model_, 4);
    const DispatchReport report = cluster.dispatch({});
    EXPECT_EQ(report.completions.size(), 0u);
    EXPECT_DOUBLE_EQ(report.makespanSec, 0.0);
}

TEST_F(ClusterTest, SinglePairRuntime)
{
    Cluster cluster(model_, 1);
    const PairAssignment pair{id("correlation"), id("swaptions")};
    const DispatchReport report = cluster.dispatch({pair});
    ASSERT_EQ(report.completions.size(), 1u);
    const double expected =
        std::max(model_.colocatedSeconds(pair.first, pair.second),
                 model_.colocatedSeconds(pair.second, pair.first));
    EXPECT_DOUBLE_EQ(report.makespanSec, expected);
    EXPECT_DOUBLE_EQ(report.completions[0].startSec, 0.0);
}

TEST_F(ClusterTest, PairsQueueWhenMachinesScarce)
{
    Cluster cluster(model_, 1);
    const PairAssignment pair{id("svm"), id("kmeans")};
    const DispatchReport report = cluster.dispatch({pair, pair});
    ASSERT_EQ(report.completions.size(), 2u);
    EXPECT_DOUBLE_EQ(report.completions[1].startSec,
                     report.completions[0].endSec);
    EXPECT_NEAR(report.makespanSec,
                2.0 * report.completions[0].endSec, 1e-9);
}

TEST_F(ClusterTest, ParallelMachinesOverlap)
{
    Cluster cluster(model_, 2);
    const PairAssignment pair{id("svm"), id("kmeans")};
    const DispatchReport report = cluster.dispatch({pair, pair});
    EXPECT_DOUBLE_EQ(report.completions[1].startSec, 0.0);
    EXPECT_NEAR(report.utilization, 1.0, 1e-9);
}

TEST_F(ClusterTest, MakespanCoversLongestMachine)
{
    Cluster cluster(model_, 2);
    std::vector<PairAssignment> pairs{
        {id("correlation"), id("naive")}, // long Spark pair
        {id("swaptions"), id("vips")},    // short PARSEC pair
        {id("x264"), id("bodytrack")},    // another short pair
    };
    const DispatchReport report = cluster.dispatch(pairs);
    double latest = 0.0;
    for (const auto &done : report.completions)
        latest = std::max(latest, done.endSec);
    EXPECT_DOUBLE_EQ(report.makespanSec, latest);
    EXPECT_GT(report.utilization, 0.0);
    EXPECT_LE(report.utilization, 1.0);
}

TEST_F(ClusterTest, ShortJobsLandOnFreedMachineFirst)
{
    Cluster cluster(model_, 2);
    std::vector<PairAssignment> pairs{
        {id("correlation"), id("naive")}, // machine 0: long
        {id("swaptions"), id("vips")},    // machine 1: short
        {id("x264"), id("bodytrack")},    // should reuse machine 1
    };
    const DispatchReport report = cluster.dispatch(pairs);
    EXPECT_EQ(report.completions[2].machine,
              report.completions[1].machine);
}

TEST_F(ClusterTest, MeanPenaltyAveragesBothSides)
{
    Cluster cluster(model_, 1);
    const PairAssignment pair{id("dedup"), id("correlation")};
    const DispatchReport report = cluster.dispatch({pair});
    const double expected =
        (model_.penalty(pair.first, pair.second) +
         model_.penalty(pair.second, pair.first)) / 2.0;
    EXPECT_NEAR(report.meanPenalty, expected, 1e-12);
}

} // namespace
} // namespace cooper
