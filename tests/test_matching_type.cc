/**
 * @file
 * Unit tests for the Matching container.
 */

#include <gtest/gtest.h>

#include "matching/matching.hh"
#include "util/error.hh"

namespace cooper {
namespace {

TEST(Matching, StartsUnmatched)
{
    Matching m(4);
    EXPECT_EQ(m.size(), 4u);
    EXPECT_EQ(m.pairCount(), 0u);
    EXPECT_FALSE(m.isPerfect());
    for (AgentId i = 0; i < 4; ++i)
        EXPECT_FALSE(m.isMatched(i));
}

TEST(Matching, PairAndLookup)
{
    Matching m(4);
    m.pair(0, 2);
    EXPECT_TRUE(m.isMatched(0));
    EXPECT_TRUE(m.isMatched(2));
    EXPECT_EQ(m.partnerOf(0), 2u);
    EXPECT_EQ(m.partnerOf(2), 0u);
    EXPECT_EQ(m.pairCount(), 1u);
}

TEST(Matching, RepairMovesPartners)
{
    Matching m(4);
    m.pair(0, 1);
    m.pair(0, 2); // 1 must be released
    EXPECT_EQ(m.partnerOf(0), 2u);
    EXPECT_FALSE(m.isMatched(1));
    EXPECT_TRUE(m.consistent());
}

TEST(Matching, UnpairReleasesBoth)
{
    Matching m(2);
    m.pair(0, 1);
    m.unpair(1);
    EXPECT_FALSE(m.isMatched(0));
    EXPECT_FALSE(m.isMatched(1));
}

TEST(Matching, SelfPairFatal)
{
    Matching m(2);
    EXPECT_THROW(m.pair(1, 1), FatalError);
}

TEST(Matching, OutOfRangeFatal)
{
    Matching m(2);
    EXPECT_THROW(m.pair(0, 5), FatalError);
    EXPECT_THROW(m.unpair(5), FatalError);
}

TEST(Matching, PerfectDetection)
{
    Matching m(4);
    m.pair(0, 3);
    m.pair(1, 2);
    EXPECT_TRUE(m.isPerfect());
    EXPECT_EQ(m.pairCount(), 2u);
}

TEST(Matching, PairsSortedAscending)
{
    Matching m(6);
    m.pair(5, 0);
    m.pair(3, 1);
    const auto pairs = m.pairs();
    ASSERT_EQ(pairs.size(), 2u);
    EXPECT_EQ(pairs[0], std::make_pair(AgentId(0), AgentId(5)));
    EXPECT_EQ(pairs[1], std::make_pair(AgentId(1), AgentId(3)));
}

TEST(Matching, ConsistentOnFreshAndPaired)
{
    Matching m(3);
    EXPECT_TRUE(m.consistent());
    m.pair(0, 2);
    EXPECT_TRUE(m.consistent());
}

} // namespace
} // namespace cooper
