/**
 * @file
 * load_gen — multi-connection load generator for `cooper_cli serve
 * --listen`.
 *
 * Replays a trace_gen churn trace against a serving coordinator from
 * N concurrent TCP connections at a configurable open-loop rate
 * (src/net/client.hh), then reports client-side service metrics: the
 * sustained event rate and the tail (p50/p99/p999) of both
 * per-message round-trip and per-epoch completion latency — worst-
 * case latency being the headline metric egalitarian colocation cares
 * about. The server's summary is written to --out; it is byte-
 * identical to what `cooper_cli serve --trace` would have produced
 * for the same (trace, seed, config).
 *
 * Against a multi-run server, --runs R drives R replays at once: run
 * r targets runId = --run-id + r from its own thread and writes its
 * summary to --out.run<r>. --run-id alone aims a single replay at a
 * specific entry in the server's run table.
 */

#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hh"
#include "net/frame.hh"
#include "online/events.hh"
#include "util/cli.hh"
#include "util/error.hh"
#include "util/table.hh"

namespace {

using namespace cooper;

void
writeSummary(const std::string &path, const std::string &summary)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    fatalIf(!os, "load_gen: cannot write ", path);
    os << summary;
    os.flush();
    fatalIf(!os.good(), "load_gen: write failed for ", path);
}

void
printStats(const net::LoadGenStats &stats, std::size_t connections)
{
    std::cout
        << "replayed " << stats.eventsSent << " event(s) over "
        << connections << " connection(s) in "
        << Table::num(stats.wallSeconds, 3) << "s ("
        << Table::num(stats.arrivalsPerSecond, 1)
        << " events/s sustained), " << stats.acksReceived
        << " ack(s), " << stats.epochsObserved << " epoch(s)";
    if (stats.busyRefusals > 0)
        std::cout << ", " << stats.busyRefusals << " busy refusal(s) "
                  << stats.retriesSent << " retransmit(s)";
    std::cout
        << "\n"
        << "rtt ms   p50 " << Table::num(stats.rttP50Ms, 3)
        << "  p99 " << Table::num(stats.rttP99Ms, 3)
        << "  p999 " << Table::num(stats.rttP999Ms, 3) << "\n"
        << "epoch ms p50 " << Table::num(stats.epochP50Ms, 3)
        << "  p99 " << Table::num(stats.epochP99Ms, 3)
        << "  p999 " << Table::num(stats.epochP999Ms, 3) << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    CliFlags flags;
    flags.declare("trace", "trace.txt",
                  "churn trace file (see trace_gen)");
    flags.declare("host", "127.0.0.1", "server address");
    flags.declare("port", "0", "server port (required)");
    flags.declare("connections", "4",
                  "concurrent connections the trace is split across");
    flags.declare("rate", "0",
                  "aggregate open-loop events/second (0 = as fast as "
                  "the sockets accept)");
    flags.declare("subscribe-assignments", "0",
                  "1 = receive per-epoch Assignment frames");
    flags.declare("subscribe-probes", "0",
                  "1 = receive per-epoch ProbeResult frames");
    flags.declare("run-id", "0",
                  "run in the server's table this replay feeds");
    flags.declare("runs", "1",
                  "concurrent replays; replay r targets "
                  "--run-id + r and writes --out.run<r>");
    flags.declare("out", "",
                  "write the server's summary JSON here (empty = "
                  "discard)");

    try {
        if (!flags.parse(argc,
                         const_cast<const char *const *>(argv)))
            return 0;

        net::LoadGenConfig config;
        config.host = flags.get("host");
        config.port =
            static_cast<std::uint16_t>(flags.getInt("port"));
        fatalIf(config.port == 0, "load_gen: --port is required");
        config.connections =
            static_cast<std::size_t>(flags.getInt("connections"));
        config.eventsPerSecond = flags.getDouble("rate");
        if (flags.getInt("subscribe-assignments") != 0)
            config.subscriptions |= net::kSubscribeAssignments;
        if (flags.getInt("subscribe-probes") != 0)
            config.subscriptions |= net::kSubscribeProbes;
        const auto baseRun =
            static_cast<std::uint64_t>(flags.getInt("run-id"));
        const auto runs =
            static_cast<std::uint64_t>(flags.getInt("runs"));
        fatalIf(runs == 0, "load_gen: --runs must be >= 1");

        const ChurnTrace trace = loadTrace(flags.get("trace"));

        if (runs == 1) {
            config.runId = baseRun;
            const net::LoadGenResult result =
                net::runLoadGen(trace, config);
            if (!result.ok) {
                std::cerr << "load_gen: " << result.error << "\n";
                return 1;
            }
            if (!flags.get("out").empty())
                writeSummary(flags.get("out"), result.summary);
            printStats(result.stats, config.connections);
            if (!flags.get("out").empty())
                std::cout << "summary -> " << flags.get("out")
                          << "\n";
            return 0;
        }

        // Multi-run: one replay thread per run, each with its own
        // connection pool, all hammering the same server at once.
        std::vector<net::LoadGenResult> results(runs);
        std::vector<std::thread> threads;
        threads.reserve(runs);
        for (std::uint64_t r = 0; r < runs; ++r)
            threads.emplace_back([&, r]() {
                net::LoadGenConfig runConfig = config;
                runConfig.runId = baseRun + r;
                results[r] = net::runLoadGen(trace, runConfig);
            });
        for (auto &thread : threads)
            thread.join();

        bool ok = true;
        for (std::uint64_t r = 0; r < runs; ++r) {
            if (!results[r].ok) {
                std::cerr << "load_gen: run " << (baseRun + r)
                          << ": " << results[r].error << "\n";
                ok = false;
                continue;
            }
            if (!flags.get("out").empty())
                writeSummary(formatMessage(flags.get("out"), ".run",
                                           baseRun + r),
                             results[r].summary);
            std::cout << "run " << (baseRun + r) << ":\n";
            printStats(results[r].stats, config.connections);
        }
        if (!ok)
            return 1;
        if (!flags.get("out").empty())
            std::cout << "summaries -> " << flags.get("out")
                      << ".run<r>\n";
        return 0;
    } catch (const std::exception &err) {
        std::cerr << "load_gen: " << err.what() << "\n";
        return 1;
    }
}
