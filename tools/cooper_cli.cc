/**
 * @file
 * cooper_cli — drive the colocation pipeline through files, the way
 * the paper's implementation wires agents and coordinator together
 * (Section IV.B: assignments are written to files and sent to
 * agents).
 *
 * Subcommands:
 *   profile  sample colocation profiles           -> profiles file
 *   predict  fill a sparse profile matrix         -> profiles file
 *   match    colocate a population                -> matching file
 *   assess   count blocking pairs of a matching   -> report on stdout
 *   epoch    run one full in-memory epoch         -> report on stdout
 *   serve    replay a churn trace online          -> summary JSON
 *
 * `serve` runs the event-driven online service (src/online) over a
 * trace from tools/trace_gen: admission, probing, warm-started
 * incremental prediction, and budgeted re-matching, epoch by epoch on
 * a virtual clock. Its --out summary contains only decision-path
 * quantities, so replaying the same (trace, seed, config) emits a
 * byte-identical file at any --threads value; --checkpoint/--restore
 * round-trip the driver state through io/serialize. --fault-plan
 * loads a deterministic fault-injection script (src/fault): probe
 * timeouts, lost/corrupted measurements, node crashes, and
 * checkpoint-write failures, all replayed bit-identically too.
 * --shards K >= 1 routes the trace through the sharded fleet driver
 * (src/shard): K matching domains stepped concurrently plus a
 * budgeted cross-shard rebalance pass per epoch; --shards 1
 * reproduces the flat driver bit-for-bit.
 *
 * `epoch` drives profile -> predict -> match -> assess -> dispatch in
 * one process (plus a sampled-Shapley attribution step) and is the
 * entry point for the observability layer: --metrics-out and
 * --trace-out install a collector session around the whole pipeline.
 * Bare flags route to it, so
 *   cooper_cli --policy SMR --metrics-out m.json --trace-out t.json
 * emits a metrics JSON and a Chrome-trace JSON (load the latter in
 * chrome://tracing or https://ui.perfetto.dev).
 *
 * A full round trip:
 *   cooper_cli profile --ratio 0.25 --out profiles.txt
 *   cooper_cli predict --in profiles.txt --out dense.txt
 *   cooper_cli match --profiles dense.txt --agents 100 --policy SMR \
 *       --out matching.txt
 *   cooper_cli assess --profiles dense.txt --matching matching.txt \
 *       --alpha 0.02
 */

#include <algorithm>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cf/item_knn.hh"
#include "net/server.hh"
#include "net/service_plane.hh"
#include "core/experiment.hh"
#include "core/framework.hh"
#include "core/instance.hh"
#include "core/policies.hh"
#include "fault/plan.hh"
#include "game/shapley.hh"
#include "io/serialize.hh"
#include "matching/blocking.hh"
#include "obs/obs.hh"
#include "online/driver.hh"
#include "shard/sharded_driver.hh"
#include "sim/profiler.hh"
#include "util/cli.hh"
#include "util/error.hh"
#include "util/table.hh"
#include "workload/population.hh"

namespace {

using namespace cooper;

std::string
usageText()
{
    return "Usage: cooper_cli <profile|predict|match|assess|epoch|serve> "
           "[flags]\n"
           "  profile  --ratio R --seed S --out FILE\n"
           "  predict  --in FILE --iterations N --threads T --out FILE\n"
           "  match    --profiles FILE --agents N --mix M --policy P\n"
           "           --seed S --threads T --out FILE\n"
           "  assess   --profiles FILE --agents N --mix M --seed S\n"
           "           --matching FILE --alpha A --threads T\n"
           "  epoch    --agents N --mix M --policy P --ratio R --seed S\n"
           "           --alpha A --threads T --shapley-samples K\n"
           "           --metrics-out FILE --trace-out FILE\n"
           "  serve    --trace FILE --policy P --alpha A --seed S\n"
           "           --group-size G (with --policy coalition)\n"
           "           --epoch-ticks T --admit N --queue-depth N\n"
           "           --probes N --budget N --rematch-threshold N\n"
           "           --threads T --out FILE\n"
           "           --checkpoint FILE --restore FILE\n"
           "           --fault-plan FILE --probe-retries N\n"
           "           --probe-budget N --quarantine-after N\n"
           "           --quarantine-epochs N --checkpoint-every N\n"
           "           --shards K --rebalance-budget N\n"
           "           --listen --port P --port-file FILE --batched B\n"
           "           --runs N --max-pending N --idle-timeout-ms T\n"
           "Bare flags (cooper_cli --policy SMR ...) route to epoch.\n"
           "serve --listen accepts the churn trace over TCP instead of\n"
           "--trace: clients (tools/load_gen) stream framed events and\n"
           "receive the same byte-identical summary the in-process\n"
           "replay writes (see DESIGN.md, \"Service plane\"). --runs N\n"
           "hosts N independent replays (run r uses seed+r; summaries\n"
           "land at --out.run<r>) behind one epoll loop.\n"
           "--metrics-out / --trace-out enable the observability layer\n"
           "(off by default; see DESIGN.md, \"Observability\").\n"
           "--threads 0 uses all hardware threads, 1 runs serially;\n"
           "results are identical either way (see DESIGN.md,\n"
           "\"Parallelism & determinism\").\n"
           "Run a subcommand with --help for its flags.\n";
}

/** The --threads flag, shared by the parallel subcommands. */
void
declareThreads(CliFlags &flags)
{
    flags.declare("threads", "0",
                  "worker threads (0 = all hardware, 1 = serial)");
}

std::size_t
threadsFromFlags(const CliFlags &flags)
{
    return static_cast<std::size_t>(flags.getInt("threads"));
}

/** Dense believed matrix from a (possibly sparse) profiles file. */
PenaltyMatrix
believedFromFile(const Catalog &catalog, const std::string &path,
                 std::size_t threads)
{
    const SparseMatrix profiles = loadProfiles(path);
    fatalIf(profiles.rows() != catalog.size() ||
                profiles.cols() != catalog.size(),
            "profiles file is ", profiles.rows(), "x", profiles.cols(),
            ", expected ", catalog.size(), "x", catalog.size());
    // Fill any unknowns through the predictor; a dense file passes
    // through unchanged.
    ItemKnnConfig knn_config;
    knn_config.threads = threads;
    const Prediction prediction =
        ItemKnnPredictor(knn_config).predict(profiles);
    PenaltyMatrix believed(catalog.size());
    for (std::size_t i = 0; i < catalog.size(); ++i)
        for (std::size_t j = 0; j < catalog.size(); ++j)
            believed(i, j) = prediction.dense[i][j];
    return believed;
}

/** Population sampled exactly as `match` would for these flags. */
std::vector<JobTypeId>
populationFromFlags(const Catalog &catalog, const CliFlags &flags)
{
    MixKind mix = MixKind::Uniform;
    for (MixKind candidate : allMixes())
        if (mixName(candidate) == flags.get("mix"))
            mix = candidate;
    Rng rng(static_cast<std::uint64_t>(flags.getInt("seed")));
    return samplePopulation(
        catalog, static_cast<std::size_t>(flags.getInt("agents")), mix,
        rng);
}

int
cmdProfile(int argc, const char *const *argv)
{
    CliFlags flags;
    flags.declare("ratio", "0.25", "fraction of colocations to profile");
    flags.declare("repeats", "3", "measurements per colocation");
    flags.declare("seed", "1", "profiler noise seed");
    flags.declare("out", "profiles.txt", "output profiles file");
    if (!flags.parse(argc, argv))
        return 0;

    const Catalog catalog = Catalog::paperTableI();
    const InterferenceModel model(catalog);
    SystemProfiler profiler(
        model, NoiseConfig{},
        static_cast<std::uint64_t>(flags.getInt("seed")));
    const SparseMatrix profiles = profiler.sampleProfiles(
        flags.getDouble("ratio"), 2,
        static_cast<std::size_t>(flags.getInt("repeats")));
    saveProfiles(flags.get("out"), profiles);
    std::cout << "profiled " << profiles.knownCount() << " of "
              << catalog.size() * catalog.size() << " colocations ("
              << profiler.database().totalSamples()
              << " measurements) -> " << flags.get("out") << "\n";
    return 0;
}

int
cmdPredict(int argc, const char *const *argv)
{
    CliFlags flags;
    flags.declare("in", "profiles.txt", "sparse profiles file");
    flags.declare("iterations", "2", "predictor iterations");
    declareThreads(flags);
    flags.declare("out", "dense.txt", "output dense profiles file");
    if (!flags.parse(argc, argv))
        return 0;

    const SparseMatrix sparse = loadProfiles(flags.get("in"));
    ItemKnnConfig config;
    config.iterations =
        static_cast<std::size_t>(flags.getInt("iterations"));
    config.threads = threadsFromFlags(flags);
    const Prediction prediction =
        ItemKnnPredictor(config).predict(sparse);

    SparseMatrix dense(sparse.rows(), sparse.cols());
    for (std::size_t r = 0; r < sparse.rows(); ++r)
        for (std::size_t c = 0; c < sparse.cols(); ++c)
            dense.set(r, c, prediction.dense[r][c]);
    saveProfiles(flags.get("out"), dense);
    std::cout << "predicted "
              << dense.knownCount() - sparse.knownCount()
              << " unobserved colocations in " << prediction.iterations
              << " iteration(s) -> " << flags.get("out") << "\n";
    return 0;
}

int
cmdMatch(int argc, const char *const *argv)
{
    CliFlags flags;
    flags.declare("profiles", "dense.txt", "believed profiles file");
    flags.declare("agents", "100", "population size");
    flags.declare("mix", "Uniform",
                  "Uniform|Beta-Low|Gaussian|Beta-High");
    flags.declare("policy", "SMR", "GR|CO|SMP|SMR|SR|TH");
    flags.declare("seed", "1", "population / policy seed");
    declareThreads(flags);
    flags.declare("out", "matching.txt", "output matching file");
    if (!flags.parse(argc, argv))
        return 0;

    const Catalog catalog = Catalog::paperTableI();
    const InterferenceModel model(catalog);
    PenaltyMatrix believed = believedFromFile(
        catalog, flags.get("profiles"), threadsFromFlags(flags));
    ColocationInstance instance(catalog,
                                populationFromFlags(catalog, flags),
                                model.penaltyMatrix(),
                                std::move(believed));

    Rng rng(static_cast<std::uint64_t>(flags.getInt("seed")) + 7);
    const auto policy = makePolicy(flags.get("policy"));
    const Matching matching = policy->assign(instance, rng);
    saveMatching(flags.get("out"), matching);
    std::cout << "matched " << matching.pairCount() << " pairs with "
              << policy->name() << "; mean true penalty "
              << Table::num(instance.meanTruePenalty(matching), 4)
              << " -> " << flags.get("out") << "\n";
    return 0;
}

int
cmdAssess(int argc, const char *const *argv)
{
    CliFlags flags;
    flags.declare("profiles", "dense.txt", "believed profiles file");
    flags.declare("agents", "100", "population size (as for match)");
    flags.declare("mix", "Uniform", "mix used for match");
    flags.declare("seed", "1", "seed used for match");
    flags.declare("matching", "matching.txt", "matching file");
    flags.declare("alpha", "0.02", "minimum gain to break away");
    declareThreads(flags);
    if (!flags.parse(argc, argv))
        return 0;

    const std::size_t threads = threadsFromFlags(flags);
    const Catalog catalog = Catalog::paperTableI();
    const InterferenceModel model(catalog);
    PenaltyMatrix believed =
        believedFromFile(catalog, flags.get("profiles"), threads);
    ColocationInstance instance(catalog,
                                populationFromFlags(catalog, flags),
                                model.penaltyMatrix(),
                                std::move(believed));

    const Matching matching = loadMatching(flags.get("matching"));
    fatalIf(matching.size() != instance.agents(),
            "matching covers ", matching.size(), " agents, population "
            "has ", instance.agents());

    const DisutilityTable truth(
        instance.agents(), instance.agents(),
        [&](AgentId a, AgentId b) {
            return instance.trueDisutility(a, b);
        },
        threads);
    const auto pairs = findBlockingPairs(
        matching, truth, flags.getDouble("alpha"), threads);
    std::vector<std::uint8_t> blocked(matching.size(), 0);
    for (const auto &pair : pairs) {
        blocked[pair.a] = 1;
        blocked[pair.b] = 1;
    }
    std::size_t agents_blocked = 0;
    for (std::uint8_t b : blocked)
        agents_blocked += b;

    std::cout << "mean true penalty: "
              << Table::num(instance.meanTruePenalty(matching), 4)
              << "\nblocking pairs (alpha "
              << flags.getDouble("alpha") << "): " << pairs.size()
              << "\nagents recommending break-away: " << agents_blocked
              << " of " << matching.size() << "\n";
    return 0;
}

int
cmdEpoch(int argc, const char *const *argv)
{
    CliFlags flags;
    flags.declare("agents", "60", "population size");
    flags.declare("mix", "Uniform",
                  "Uniform|Beta-Low|Gaussian|Beta-High");
    flags.declare("policy", "SMR", "GR|CO|SMP|SMR|SR|TH");
    flags.declare("ratio", "0.25", "fraction of colocations to profile");
    flags.declare("alpha", "0.02", "minimum gain to break away");
    flags.declare("seed", "1", "population / noise / policy seed");
    flags.declare("shapley-samples", "64",
                  "permutations for the attribution step (0 = skip)");
    declareThreads(flags);
    flags.declare("metrics-out", "",
                  "write metrics JSON here (enables metrics)");
    flags.declare("trace-out", "",
                  "write Chrome-trace JSON here (enables tracing)");
    if (!flags.parse(argc, argv))
        return 0;

    const std::size_t threads = threadsFromFlags(flags);
    const auto seed = static_cast<std::uint64_t>(flags.getInt("seed"));

    ObsConfig obs;
    obs.metricsOut = flags.get("metrics-out");
    obs.traceOut = flags.get("trace-out");
    obs.metrics = !obs.metricsOut.empty();
    obs.tracing = !obs.traceOut.empty();

    FrameworkConfig config;
    config.policy = flags.get("policy");
    config.sampleRatio = flags.getDouble("ratio");
    config.alpha = flags.getDouble("alpha");
    config.execution.threads = threads;

    const Catalog catalog = Catalog::paperTableI();
    const InterferenceModel model(catalog);

    // The CLI owns the session so the epoch and the post-matching
    // attribution step feed one registry and one trace; the
    // framework's own ObsScope then stays passive.
    const ObsScope scope(obs);
    CooperFramework framework(catalog, model, config, seed);
    const std::vector<JobTypeId> population =
        populationFromFlags(catalog, flags);
    EpochReport report;
    {
        const TraceSpan span("cli.epoch", "cli");
        report = framework.runEpoch(population);
    }

    // Cross-check the agents' message-exchange discovery with a
    // direct blocking-pair scan over true disutilities.
    ColocationInstance instance = framework.buildInstance(population);
    const DisutilityTable truth(
        instance.agents(), instance.agents(),
        [&](AgentId a, AgentId b) {
            return instance.trueDisutility(a, b);
        },
        threads);
    const auto blocking =
        findBlockingPairs(report.matching, truth, config.alpha, threads);

    std::cout << "epoch with " << config.policy << ": mean true penalty "
              << Table::num(report.meanPenalty, 4) << ", "
              << report.blockingPairs << " blocking pair(s) via "
              "messages (" << blocking.size() << " by direct scan), "
              << report.breakAwayAgents
              << " break-away recommendation(s), dispatched "
              << report.dispatch.completions.size() << " pair(s)\n";

    // Attribute the matched agents' total interference with a sampled
    // Shapley value (the game tier's hot path). CoalitionMask bounds
    // the coalition, so attribute across the most-penalized agents.
    const auto samples =
        static_cast<std::size_t>(flags.getInt("shapley-samples"));
    if (samples > 0) {
        std::vector<double> penalties = report.penalties;
        std::sort(penalties.begin(), penalties.end(),
                  std::greater<double>());
        constexpr std::size_t kMaxCoalition = 12;
        if (penalties.size() > kMaxCoalition)
            penalties.resize(kMaxCoalition);
        if (penalties.size() >= 2) {
            Rng rng(seed + 11);
            const std::vector<double> phi = shapleySampled(
                penalties.size(), interferenceGame(penalties), samples,
                rng, threads);
            double attributed = 0.0;
            for (double p : phi)
                attributed += p;
            std::cout << "shapley attribution over the "
                      << penalties.size() << " most penalized agents ("
                      << samples << " permutations): total "
                      << Table::num(attributed, 4) << ", max share "
                      << Table::num(
                             *std::max_element(phi.begin(), phi.end()),
                             4)
                      << "\n";
        }
    }

    if (ObsSession *session = scope.session()) {
        if (MetricsRegistry *metrics = session->metrics())
            std::cout << "\n" << metrics->toTable().toText();
    }
    if (!obs.metricsOut.empty())
        std::cout << "metrics -> " << obs.metricsOut << "\n";
    if (!obs.traceOut.empty())
        std::cout << "trace -> " << obs.traceOut << "\n";
    return 0;
}

int
cmdServe(int argc, const char *const *argv)
{
    CliFlags flags;
    flags.declare("trace", "trace.txt", "churn trace file (see trace_gen)");
    flags.declare("policy", "SMR", "GR|CO|SMP|SMR|SR|TH|coalition");
    flags.declare("group-size", "2",
                  "jobs per CMP under --policy coalition (2..20)");
    flags.declare("alpha", "0.02", "minimum gain to break away");
    flags.declare("seed", "1", "probe-noise / policy seed");
    flags.declare("epoch-ticks", "100", "virtual-clock ticks per epoch");
    flags.declare("admit", "8", "arrivals admitted per epoch");
    flags.declare("queue-depth", "64",
                  "admission backpressure bound (0 = unbounded)");
    flags.declare("probes", "4",
                  "probe colocations per admitted arrival");
    flags.declare("repeats", "3", "measurements averaged per probe");
    flags.declare("refresh", "0", "profile refresh probes per epoch");
    flags.declare("budget", "8", "kept pairs breakable per epoch");
    flags.declare("rematch-threshold", "32",
                  "blocking pairs that force a full re-match");
    flags.declare("full-predict", "0",
                  "1 = re-predict from scratch every epoch (results "
                  "are identical, only slower)");
    flags.declare("fault-plan", "",
                  "JSON fault-injection script (cooper.faultplan.v1); "
                  "empty = no faults");
    flags.declare("probe-retries", "3",
                  "probe retries per cell before it fails");
    flags.declare("probe-budget", "0",
                  "probe attempts per epoch (0 = unbounded; exhausted "
                  "cells fall back to CF prediction)");
    flags.declare("quarantine-after", "2",
                  "failed probe cells that quarantine an arrival "
                  "(0 = never quarantine)");
    flags.declare("quarantine-epochs", "2",
                  "epochs a quarantined job sits out");
    flags.declare("checkpoint-every", "0",
                  "write --checkpoint every N epochs too (0 = only at "
                  "the end)");
    flags.declare("shards", "0",
                  "matching domains for the sharded fleet driver "
                  "(0 = flat unsharded driver; clamped to the catalog)");
    flags.declare("rebalance-budget", "4",
                  "cross-shard migrations per epoch when sharded "
                  "(0 = no rebalancing)");
    flags.declare("listen", "false",
                  "serve the trace over TCP: accept framed events from "
                  "load_gen clients instead of reading --trace");
    flags.declare("port", "0",
                  "TCP listen port for --listen (0 = ephemeral)");
    flags.declare("port-file", "",
                  "write the bound port here once listening (lets "
                  "scripts find an ephemeral port)");
    flags.declare("batched", "1",
                  "1 = batched decode + writev responses; 0 = the "
                  "per-message-syscall baseline (identical results, "
                  "only slower)");
    flags.declare("runs", "1",
                  "independent replays served concurrently under "
                  "--listen; run r uses seed+r and writes "
                  "--out.run<r> (plain --out when 1)");
    flags.declare("max-pending", "4096",
                  "parked out-of-order events per connection before "
                  "the server answers Busy (0 = unbounded)");
    flags.declare("idle-timeout-ms", "0",
                  "reap connections silent this long under --listen "
                  "(0 = never)");
    declareThreads(flags);
    flags.declare("out", "online.json",
                  "deterministic run-summary JSON");
    flags.declare("checkpoint", "",
                  "write the final driver state here");
    flags.declare("restore", "", "resume from this checkpoint file");
    flags.declare("metrics-out", "",
                  "write metrics JSON here (enables metrics)");
    flags.declare("trace-out", "",
                  "write Chrome-trace JSON here (enables tracing)");
    if (!flags.parse(argc, argv))
        return 0;

    ObsConfig obs;
    obs.metricsOut = flags.get("metrics-out");
    obs.traceOut = flags.get("trace-out");
    obs.metrics = !obs.metricsOut.empty();
    obs.tracing = !obs.traceOut.empty();

    FrameworkConfig config;
    config.policy = flags.get("policy");
    config.alpha = flags.getDouble("alpha");
    config.execution.threads = threadsFromFlags(flags);
    OnlineConfig &online = config.execution.online;
    online.epochTicks =
        static_cast<std::uint64_t>(flags.getInt("epoch-ticks"));
    online.admitPerEpoch =
        static_cast<std::size_t>(flags.getInt("admit"));
    online.maxQueueDepth =
        static_cast<std::size_t>(flags.getInt("queue-depth"));
    online.probesPerArrival =
        static_cast<std::size_t>(flags.getInt("probes"));
    online.profileRepeats =
        static_cast<std::size_t>(flags.getInt("repeats"));
    online.refreshProbesPerEpoch =
        static_cast<std::size_t>(flags.getInt("refresh"));
    online.migrationBudget =
        static_cast<std::size_t>(flags.getInt("budget"));
    online.fullRematchBlockingPairs =
        static_cast<std::size_t>(flags.getInt("rematch-threshold"));
    online.incremental = flags.getInt("full-predict") == 0;
    online.probeMaxRetries =
        static_cast<std::size_t>(flags.getInt("probe-retries"));
    online.probeBudgetPerEpoch =
        static_cast<std::size_t>(flags.getInt("probe-budget"));
    online.quarantineAfterFailures =
        static_cast<std::size_t>(flags.getInt("quarantine-after"));
    online.quarantineEpochs =
        static_cast<std::uint64_t>(flags.getInt("quarantine-epochs"));
    online.checkpointEveryEpochs =
        static_cast<std::uint64_t>(flags.getInt("checkpoint-every"));
    online.groupSize =
        static_cast<std::size_t>(flags.getInt("group-size"));
    const auto shardCount =
        static_cast<std::size_t>(flags.getInt("shards"));
    if (shardCount > 0)
        online.shards = shardCount;
    online.rebalanceBudgetPerEpoch =
        static_cast<std::size_t>(flags.getInt("rebalance-budget"));

    // Fail fast on a bad policy/group/shard combination — before any
    // trace is loaded or socket bound.
    validateServeOptions(config.policy, online.groupSize, shardCount);

    const Catalog catalog = Catalog::paperTableI();
    const InterferenceModel model(catalog);

    // The CLI owns the session so every epoch feeds one registry and
    // one trace; the driver's own ObsScope then stays passive.
    const ObsScope scope(obs);
    const auto seed = static_cast<std::uint64_t>(flags.getInt("seed"));

    if (flags.getBool("listen")) {
        // Network mode: the trace arrives as framed events over TCP
        // (tools/load_gen); the ServicePlane restores canonical order
        // so the summary is byte-identical to the --trace replay.
        // --runs N hosts N independent replays (run r seeded seed+r)
        // behind the same epoll loop.
        const auto runs =
            static_cast<std::uint64_t>(flags.getInt("runs"));
        fatalIf(runs == 0, "serve: --runs must be >= 1");
        fatalIf(runs > 1 && !flags.get("restore").empty(),
                "serve: --restore only applies to a single run "
                "(--runs 1); each run seeds its own fresh driver");
        const auto runPath = [runs](const std::string &base,
                                    std::uint64_t r) {
            return runs > 1 ? formatMessage(base, ".run", r) : base;
        };

        std::vector<std::unique_ptr<OnlineDriver>> flats;
        std::vector<std::unique_ptr<ShardedDriver>> shardeds;
        std::vector<std::unique_ptr<net::ServicePlane>> planes;
        const std::string checkpointPath = flags.get("checkpoint");
        for (std::uint64_t r = 0; r < runs; ++r) {
            const std::uint64_t runSeed = seed + r;
            const std::string runCheckpoint =
                checkpointPath.empty()
                    ? std::string()
                    : runPath(checkpointPath, r);
            std::unique_ptr<net::ServicePlane> plane;
            if (shardCount > 0) {
                auto sharded = std::make_unique<ShardedDriver>(
                    catalog, model, config, runSeed);
                if (!flags.get("fault-plan").empty())
                    sharded->setFaultPlan(loadFaultPlan(
                        flags.get("fault-plan"), runSeed));
                if (online.checkpointEveryEpochs > 0 &&
                    !runCheckpoint.empty())
                    sharded->setCheckpointSink(
                        [runCheckpoint](const ShardedState &state) {
                            saveShardedState(runCheckpoint, state);
                            return true;
                        });
                if (!flags.get("restore").empty())
                    sharded->restore(
                        loadShardedState(flags.get("restore")));
                plane = std::make_unique<net::ServicePlane>(
                    catalog, *sharded);
                if (!runCheckpoint.empty())
                    plane->setCheckpointHook(
                        [&driver = *sharded, runCheckpoint]() {
                            saveShardedState(runCheckpoint,
                                             driver.snapshot());
                            return true;
                        });
                shardeds.push_back(std::move(sharded));
            } else {
                auto flat = std::make_unique<OnlineDriver>(
                    catalog, model, config, runSeed);
                if (!flags.get("fault-plan").empty())
                    flat->setFaultPlan(loadFaultPlan(
                        flags.get("fault-plan"), runSeed));
                if (online.checkpointEveryEpochs > 0 &&
                    !runCheckpoint.empty())
                    flat->setCheckpointSink(
                        [runCheckpoint](const OnlineState &state) {
                            saveOnlineState(runCheckpoint, state);
                            return true;
                        });
                if (!flags.get("restore").empty())
                    flat->restore(
                        loadOnlineState(flags.get("restore")));
                plane = std::make_unique<net::ServicePlane>(catalog,
                                                            *flat);
                if (!runCheckpoint.empty())
                    plane->setCheckpointHook(
                        [&driver = *flat, runCheckpoint]() {
                            saveOnlineState(runCheckpoint,
                                            driver.snapshot());
                            return true;
                        });
                flats.push_back(std::move(flat));
            }
            planes.push_back(std::move(plane));
        }

        net::ServerConfig server_config;
        server_config.port =
            static_cast<std::uint16_t>(flags.getInt("port"));
        server_config.batched = flags.getInt("batched") != 0;
        server_config.maxPendingPerConn = static_cast<std::uint64_t>(
            flags.getInt("max-pending"));
        server_config.idleTimeoutMs = static_cast<std::uint32_t>(
            flags.getInt("idle-timeout-ms"));
        net::EpollServer server(server_config);
        for (std::uint64_t r = 0; r < runs; ++r)
            server.addRun(r, *planes[r]);
        if (!flags.get("port-file").empty()) {
            std::ofstream pf(flags.get("port-file"),
                             std::ios::trunc);
            fatalIf(!pf, "serve: cannot write --port-file ",
                    flags.get("port-file"));
            pf << server.port() << "\n";
        }
        std::cout << "listening on " << server_config.host << ":"
                  << server.port()
                  << (server_config.batched ? " (batched)"
                                            : " (per-message)")
                  << ", " << runs << " run(s)" << std::endl;

        const bool served = server.runUntilServed();

        // Surviving runs deliver their summaries even when a sibling
        // died; only their files are written.
        std::uint64_t written = 0;
        std::uint64_t eventsTotal = 0;
        std::uint64_t epochsTotal = 0;
        for (std::uint64_t r = 0; r < runs; ++r) {
            if (!planes[r]->finished())
                continue;
            const std::string outPath = runPath(flags.get("out"), r);
            std::ofstream os(outPath,
                             std::ios::binary | std::ios::trunc);
            fatalIf(!os, "serve: cannot write ", outPath);
            os << planes[r]->summary();
            os.flush();
            fatalIf(!os.good(), "serve: write failed for ", outPath);
            ++written;
            eventsTotal += planes[r]->eventsIngested();
            epochsTotal += planes[r]->epochsCommitted();
            if (!checkpointPath.empty()) {
                const std::string cp = runPath(checkpointPath, r);
                if (shardCount > 0)
                    saveShardedState(cp, shardeds[r]->snapshot());
                else
                    saveOnlineState(cp, flats[r]->snapshot());
            }
        }
        if (!served) {
            std::cerr << "cooper_cli serve: run aborted: "
                      << server.lastError() << "\n";
            for (std::uint64_t r = 0; r < runs; ++r)
                if (!server.runServed(r))
                    std::cerr << "  run " << r << ": "
                              << server.runError(r) << "\n";
            return 1;
        }
        std::cout << "served " << eventsTotal
                  << " event(s) over tcp, " << epochsTotal
                  << " epoch(s) across " << written << " run(s) -> "
                  << flags.get("out")
                  << (runs > 1 ? ".run<r>" : "") << "\n";
        if (!checkpointPath.empty())
            std::cout << "checkpoint -> " << checkpointPath
                      << (runs > 1 ? ".run<r>" : "") << "\n";
        if (!obs.metricsOut.empty())
            std::cout << "metrics -> " << obs.metricsOut << "\n";
        if (!obs.traceOut.empty())
            std::cout << "trace -> " << obs.traceOut << "\n";
        return 0;
    }

    if (shardCount > 0) {
        ShardedDriver driver(catalog, model, config, seed);
        if (!flags.get("fault-plan").empty())
            driver.setFaultPlan(
                loadFaultPlan(flags.get("fault-plan"), seed));
        if (online.checkpointEveryEpochs > 0 &&
            !flags.get("checkpoint").empty()) {
            const std::string path = flags.get("checkpoint");
            driver.setCheckpointSink([path](const ShardedState &state) {
                saveShardedState(path, state);
                return true;
            });
        }
        ChurnTrace trace = loadTrace(flags.get("trace"));
        if (!flags.get("restore").empty()) {
            driver.restore(loadShardedState(flags.get("restore")));
            trace = trace.suffix(driver.clockTick());
        }
        const ShardedReport report = driver.run(trace);
        saveShardedSummary(flags.get("out"), report);
        if (!flags.get("checkpoint").empty())
            saveShardedState(flags.get("checkpoint"), driver.snapshot());

        std::size_t admitted = 0;
        std::size_t rejected = 0;
        for (const OnlineReport &shard : report.perShard) {
            admitted += shard.totalAdmitted;
            rejected += shard.totalRejected;
        }
        std::cout << "served " << report.epochs.size()
                  << " epoch(s) on " << report.shards
                  << " shard(s) with " << report.policy << ": "
                  << admitted << " admitted, " << rejected
                  << " rejected, " << report.totalCrossMigrations
                  << " cross-shard migration(s) over "
                  << report.totalRebalanceEpochs
                  << " epoch(s); final population "
                  << report.finalPopulation
                  << ", egalitarian objective "
                  << Table::num(report.finalObjective, 4) << " -> "
                  << flags.get("out") << "\n";
        if (!flags.get("checkpoint").empty())
            std::cout << "checkpoint -> " << flags.get("checkpoint")
                      << "\n";
        if (!obs.metricsOut.empty())
            std::cout << "metrics -> " << obs.metricsOut << "\n";
        if (!obs.traceOut.empty())
            std::cout << "trace -> " << obs.traceOut << "\n";
        return 0;
    }

    OnlineDriver driver(catalog, model, config, seed);
    if (!flags.get("fault-plan").empty())
        driver.setFaultPlan(loadFaultPlan(flags.get("fault-plan"), seed));
    if (online.checkpointEveryEpochs > 0 &&
        !flags.get("checkpoint").empty()) {
        const std::string path = flags.get("checkpoint");
        driver.setCheckpointSink([path](const OnlineState &state) {
            saveOnlineState(path, state);
            return true;
        });
    }
    ChurnTrace trace = loadTrace(flags.get("trace"));
    if (!flags.get("restore").empty()) {
        driver.restore(loadOnlineState(flags.get("restore")));
        trace = trace.suffix(driver.clockTick());
    }
    const OnlineReport report = driver.run(trace);
    saveOnlineSummary(flags.get("out"), report);
    if (!flags.get("checkpoint").empty())
        saveOnlineState(flags.get("checkpoint"), driver.snapshot());

    std::cout << "served " << report.epochs.size() << " epoch(s) with "
              << report.policy << ": " << report.totalAdmitted
              << " admitted, " << report.totalRejected << " rejected, "
              << report.totalMigrations << " migration(s), "
              << report.totalFullRematches
              << " full re-match(es); final population "
              << report.finalPopulation << ", mean true penalty "
              << Table::num(report.finalMeanPenalty, 4) << " -> "
              << flags.get("out") << "\n";
    if (driver.faultPlan().enabled())
        std::cout << "faults: " << report.totalFaultsInjected
                  << " injected, " << report.totalRetries
                  << " retry(ies), " << report.totalQuarantined
                  << " quarantined (" << report.totalQuarantineReleased
                  << " released, " << report.totalAbandoned
                  << " abandoned), " << report.totalCrashes
                  << " crash(es), " << report.totalCfFallbacks
                  << " CF fallback(s), " << report.totalCheckpointFailures
                  << " checkpoint failure(s)\n";
    if (!flags.get("checkpoint").empty())
        std::cout << "checkpoint -> " << flags.get("checkpoint") << "\n";
    if (!obs.metricsOut.empty())
        std::cout << "metrics -> " << obs.metricsOut << "\n";
    if (!obs.traceOut.empty())
        std::cout << "trace -> " << obs.traceOut << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliCommands commands("cooper_cli");
    commands.declare("profile", cmdProfile);
    commands.declare("predict", cmdPredict);
    commands.declare("match", cmdMatch);
    commands.declare("assess", cmdAssess);
    commands.declare("epoch", cmdEpoch);
    commands.declare("serve", cmdServe);
    // Bare flags route to the full-pipeline subcommand, so
    // `cooper_cli --policy SMR --metrics-out m.json` just works.
    commands.routeBareFlagsTo("epoch");
    commands.setUsageText(usageText());
    return commands.run(argc,
                        const_cast<const char *const *>(argv));
}
