# Multi-run determinism under adversarial interleaving: one `cooper_cli
# serve --listen --runs 4` epoll loop hosts four independent replays of
# the same trace (run r seeded seed+r) while four load_gen replay
# threads hammer it concurrently through a deliberately tiny
# --max-pending bound, so the Busy flow-control path (refusal, client
# back-off, retransmit) fires constantly in the middle of the replay.
# Every run's summary — the server's --out.run<r> and each client's
# received Summary bytes — must still be byte-identical to the solo
# in-process `cooper_cli serve --trace` replay of that (trace, seed+r,
# config). Flat and sharded drivers, single- and multi-threaded.
function(run_step)
    execute_process(COMMAND ${ARGV} WORKING_DIRECTORY ${WORKDIR}
                    RESULT_VARIABLE code OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(NOT code EQUAL 0)
        message(FATAL_ERROR "step failed (${code}): ${ARGV}\n${out}${err}")
    endif()
    message(STATUS "${out}")
endfunction()

function(require_identical a b what)
    execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                    ${WORKDIR}/${a} ${WORKDIR}/${b}
                    RESULT_VARIABLE code)
    if(NOT code EQUAL 0)
        message(FATAL_ERROR "${what}: ${a} and ${b} differ")
    endif()
endfunction()

function(wait_for_file path what)
    foreach(attempt RANGE 300)
        if(EXISTS ${WORKDIR}/${path})
            return()
        endif()
        execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
    endforeach()
    message(FATAL_ERROR "${what}: timed out waiting for ${path}")
endfunction()

# Poll until the port file holds an actual port number (existence alone
# races the server's write).
function(wait_for_port_file path out_var what)
    foreach(attempt RANGE 300)
        if(EXISTS ${WORKDIR}/${path})
            file(READ ${WORKDIR}/${path} port)
            string(STRIP "${port}" port)
            if(port MATCHES "^[0-9]+$")
                set(${out_var} "${port}" PARENT_SCOPE)
                return()
            endif()
        endif()
        execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
    endforeach()
    message(FATAL_ERROR "${what}: timed out waiting for ${path}")
endfunction()

set(RUNS 4)
set(BASE_SEED 11)

# Solo references, then the same four runs concurrently over TCP.
function(multi_round_trip tag)
    set(config_flags ${ARGN})

    math(EXPR last "${RUNS} - 1")
    foreach(r RANGE ${last})
        math(EXPR run_seed "${BASE_SEED} + ${r}")
        run_step(${CLI} serve --trace serve_multi_trace.txt
                 --seed ${run_seed} ${config_flags}
                 --out ${tag}_ref${r}.json)
    endforeach()

    file(REMOVE ${WORKDIR}/${tag}_port.txt ${WORKDIR}/${tag}_done.txt)
    string(JOIN " " server_args ${config_flags})
    execute_process(
        COMMAND sh -c "{ ${CLI} serve --listen --runs ${RUNS} \
--port-file ${tag}_port.txt --trace serve_multi_trace.txt \
--seed ${BASE_SEED} ${server_args} --max-pending 4 \
--idle-timeout-ms 20000 --out ${tag}_server.json \
> ${tag}_server.log 2>&1; echo done > ${tag}_done.txt; } \
< /dev/null > /dev/null 2>&1 &"
        WORKING_DIRECTORY ${WORKDIR} RESULT_VARIABLE code)
    if(NOT code EQUAL 0)
        message(FATAL_ERROR "${tag}: failed to launch the server")
    endif()
    wait_for_port_file(${tag}_port.txt port
                       "${tag}: server never came up")
    run_step(${LOAD_GEN} --trace serve_multi_trace.txt --port ${port}
             --runs ${RUNS} --connections 3
             --out ${tag}_client.json)
    wait_for_file(${tag}_done.txt "${tag}: server never exited")

    foreach(r RANGE ${last})
        require_identical(${tag}_ref${r}.json
                          ${tag}_server.json.run${r}
                          "${tag}: served run ${r} diverged from its \
solo in-process replay")
        require_identical(${tag}_ref${r}.json
                          ${tag}_client.json.run${r}
                          "${tag}: client run ${r} summary diverged \
from its solo in-process replay")
    endforeach()
endfunction()

run_step(${TRACE_GEN} --arrivals 120 --initial 16 --mean-gap 8
         --mean-life 400 --seed 7 --out serve_multi_trace.txt)

multi_round_trip(serve_multi_flat_t1 --threads 1)
multi_round_trip(serve_multi_flat_t8 --threads 8)
multi_round_trip(serve_multi_shard_t1 --threads 1 --shards 4)
multi_round_trip(serve_multi_shard_t8 --threads 8 --shards 4)
