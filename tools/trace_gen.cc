/**
 * @file
 * trace_gen — synthesize churn traces for `cooper_cli serve`.
 *
 * Emits the line-oriented "cooper-trace 1" format (src/online/events):
 * an initial population arriving at tick 0, then exponential
 * interarrival gaps and exponential lifetimes, with job types drawn
 * from one of the Figure 11 mix densities. A (flags, seed) pair fully
 * determines the trace.
 *
 *   trace_gen --arrivals 1000 --initial 24 --mean-gap 12 \
 *       --mean-life 600 --mix Uniform --seed 7 --out trace.txt
 */

#include <iostream>
#include <string>

#include "online/churn.hh"
#include "util/cli.hh"
#include "util/error.hh"
#include "workload/catalog.hh"

int
main(int argc, char **argv)
{
    using namespace cooper;

    CliFlags flags;
    flags.declare("arrivals", "200", "arrivals after the initial jobs");
    flags.declare("initial", "24", "jobs present at tick 0");
    flags.declare("mean-gap", "12", "mean interarrival gap, in ticks");
    flags.declare("mean-life", "600", "mean job lifetime, in ticks");
    flags.declare("mix", "Uniform", "Uniform|Beta-Low|Gaussian|Beta-High");
    flags.declare("open-ended", "0",
                  "1 = drop departures past the last arrival");
    flags.declare("seed", "1", "trace seed");
    flags.declare("out", "trace.txt", "output trace file");
    try {
        if (!flags.parse(argc, argv))
            return 0;

        ChurnConfig config;
        config.arrivals =
            static_cast<std::size_t>(flags.getInt("arrivals"));
        config.initialJobs =
            static_cast<std::size_t>(flags.getInt("initial"));
        config.meanInterarrivalTicks = flags.getDouble("mean-gap");
        config.meanLifetimeTicks = flags.getDouble("mean-life");
        config.openEnded = flags.getInt("open-ended") != 0;
        config.mix = MixKind::Uniform;
        bool known_mix = false;
        for (MixKind candidate : allMixes()) {
            if (mixName(candidate) == flags.get("mix")) {
                config.mix = candidate;
                known_mix = true;
            }
        }
        fatalIf(!known_mix, "trace_gen: unknown mix '", flags.get("mix"),
                "'");

        const Catalog catalog = Catalog::paperTableI();
        Rng rng(static_cast<std::uint64_t>(flags.getInt("seed")));
        const ChurnTrace trace =
            generateChurnTrace(catalog, config, rng);
        saveTrace(flags.get("out"), trace);

        std::size_t arrivals = 0;
        for (const ChurnEvent &event : trace.events())
            if (event.kind == EventKind::Arrival)
                ++arrivals;
        std::cout << "generated " << trace.size() << " event(s) ("
                  << arrivals << " arrivals, "
                  << trace.size() - arrivals << " departures) over "
                  << trace.lastTick() << " tick(s) -> "
                  << flags.get("out") << "\n";
    } catch (const std::exception &err) {
        std::cerr << "trace_gen: " << err.what() << "\n";
        return 1;
    }
    return 0;
}
