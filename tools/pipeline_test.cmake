# Drives cooper_cli through a full profile -> predict -> match ->
# assess round trip and fails on any non-zero exit.
function(run_step)
    execute_process(COMMAND ${ARGV} WORKING_DIRECTORY ${WORKDIR}
                    RESULT_VARIABLE code OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(NOT code EQUAL 0)
        message(FATAL_ERROR "step failed (${code}): ${ARGV}\n${out}${err}")
    endif()
    message(STATUS "${out}")
endfunction()

run_step(${CLI} profile --ratio 0.25 --seed 3 --out cli_profiles.txt)
run_step(${CLI} predict --in cli_profiles.txt --out cli_dense.txt)
run_step(${CLI} match --profiles cli_dense.txt --agents 60 --policy SMR
         --seed 5 --out cli_matching.txt)
run_step(${CLI} assess --profiles cli_dense.txt --agents 60 --seed 5
         --matching cli_matching.txt --alpha 0.02)

# Full in-memory epoch with observability on (bare flags route to the
# epoch subcommand), then validate the emitted JSON without python:
# every instrumented phase must have produced a span.
run_step(${CLI} --policy SMR --agents 60 --seed 5
         --metrics-out cli_metrics.json --trace-out cli_trace.json)
run_step(${TRACE_CHECK} --trace cli_trace.json
         --metrics cli_metrics.json
         --require framework.epoch,framework.build_instance,profiler.sample_profiles,cf.predict,matching.blocking_scan,shapley.sampled,coordinator.profile,coordinator.match,coordinator.dispatch)
