# Drives cooper_cli through a full profile -> predict -> match ->
# assess round trip and fails on any non-zero exit.
function(run_step)
    execute_process(COMMAND ${ARGV} WORKING_DIRECTORY ${WORKDIR}
                    RESULT_VARIABLE code OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(NOT code EQUAL 0)
        message(FATAL_ERROR "step failed (${code}): ${ARGV}\n${out}${err}")
    endif()
    message(STATUS "${out}")
endfunction()

run_step(${CLI} profile --ratio 0.25 --seed 3 --out cli_profiles.txt)
run_step(${CLI} predict --in cli_profiles.txt --out cli_dense.txt)
run_step(${CLI} match --profiles cli_dense.txt --agents 60 --policy SMR
         --seed 5 --out cli_matching.txt)
run_step(${CLI} assess --profiles cli_dense.txt --agents 60 --seed 5
         --matching cli_matching.txt --alpha 0.02)
