# Runs bench_regression, bench_online, bench_faults, bench_shard,
# bench_serve, and bench_coalition at smoke-test sizes and validates
# the emitted JSON against the cooper.bench_kernels.v1 /
# cooper.bench_online.v1 / cooper.bench_faults.v1 /
# cooper.bench_shard.v1 / cooper.bench_serve.v1 /
# cooper.bench_coalition.v1 schemas. Mostly only the schema and the
# exact-equivalence bits are checked here — speedup and efficiency
# floors are timing-sensitive and belong to manual full-size runs
# (bench_json --min-speedup
#      similarity=3,simd_similarity=1.5,blocking=2,blocking_incremental=3,
#  bench_json --file BENCH_online.json --min-speedup predict=1.5, and
#  bench_json --file BENCH_shard.json --min-efficiency k2=0.5).
# The exceptions are the serve document's floors: batched_decode —
# the per-message baseline pays ~4x the syscalls, so batched >= 1.1x
# holds with a wide margin even at tiny sizes on a noisy runner — and
# runs_per_server, whose 0.5 floor only asserts that hosting N runs
# concurrently costs at most 2x serving them back to back. The
# coalition document's blocking-ratio ceiling is also held here — it
# counts blocking coalitions, not seconds, so it is noise-free: the
# formation seeds from the packed-pairs baseline among its candidates
# and only improves, making ratio <= 1 structural.
# Corrupt documents (empty file, truncated write) must be rejected:
# a bench run that crashed mid-write must not validate. A failing
# floor must name every offending phase with measured-vs-required
# values.
function(run_step)
    execute_process(COMMAND ${ARGV} WORKING_DIRECTORY ${WORKDIR}
                    RESULT_VARIABLE code OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(NOT code EQUAL 0)
        message(FATAL_ERROR "step failed (${code}): ${ARGV}\n${out}${err}")
    endif()
    message(STATUS "${out}")
endfunction()

function(expect_failure)
    execute_process(COMMAND ${ARGV} WORKING_DIRECTORY ${WORKDIR}
                    RESULT_VARIABLE code OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(code EQUAL 0)
        message(FATAL_ERROR
                "step was expected to fail but passed: ${ARGV}\n${out}")
    endif()
    message(STATUS "rejected as expected: ${err}")
endfunction()

run_step(${BENCH} --tiny --out bench_smoke_kernels.json)
run_step(${BENCH_JSON} --file bench_smoke_kernels.json)

run_step(${BENCH_ONLINE} --tiny --out bench_smoke_online.json)
run_step(${BENCH_JSON} --file bench_smoke_online.json)

run_step(${BENCH_FAULTS} --tiny --out bench_smoke_faults.json)
run_step(${BENCH_JSON} --file bench_smoke_faults.json)

run_step(${BENCH_SHARD} --tiny --out bench_smoke_shard.json)
run_step(${BENCH_JSON} --file bench_smoke_shard.json)

run_step(${BENCH_SERVE} --tiny --out bench_smoke_serve.json)
run_step(${BENCH_JSON} --file bench_smoke_serve.json
         --min-speedup batched_decode=1.1,runs_per_server=0.5)

run_step(${BENCH_COALITION} --tiny --out bench_smoke_coalition.json)
run_step(${BENCH_JSON} --file bench_smoke_coalition.json
         --max-blocking-ratio g3=1,g4=1)

# Floor-failure diagnostics: an unmeetable floor must fail naming the
# phase with its measured value against the requirement, and a
# multi-floor failure must report every offender, not just the first.
function(expect_floor_failure pattern)
    set(cmd ${ARGV})
    list(REMOVE_AT cmd 0)
    execute_process(COMMAND ${cmd} WORKING_DIRECTORY ${WORKDIR}
                    RESULT_VARIABLE code OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(code EQUAL 0)
        message(FATAL_ERROR
                "floor was expected to fail but passed: ${cmd}\n${out}")
    endif()
    if(NOT "${out}${err}" MATCHES "${pattern}")
        message(FATAL_ERROR
                "floor failure lacks '${pattern}': ${cmd}\n${out}${err}")
    endif()
    message(STATUS "floor rejected as expected: ${err}")
endfunction()

expect_floor_failure(
    "phase batched_decode: measured speedup .* is below the required 10000"
    ${BENCH_JSON} --file bench_smoke_serve.json
    --min-speedup batched_decode=10000)
expect_floor_failure("2 floor\\(s\\) not met"
    ${BENCH_JSON} --file bench_smoke_serve.json
    --min-speedup batched_decode=10000,serve=10000)
expect_floor_failure(
    "group row g2: measured blocking ratio .* exceeds the allowed 0"
    ${BENCH_JSON} --file bench_smoke_coalition.json
    --max-blocking-ratio g2=0)

# Corruption regressions: empty document, truncated document, and a
# whitespace-only document must all exit nonzero.
file(WRITE ${WORKDIR}/bench_smoke_empty.json "")
expect_failure(${BENCH_JSON} --file bench_smoke_empty.json)

file(READ ${WORKDIR}/bench_smoke_faults.json whole_doc)
string(LENGTH "${whole_doc}" whole_len)
math(EXPR half_len "${whole_len} / 2")
string(SUBSTRING "${whole_doc}" 0 ${half_len} half_doc)
file(WRITE ${WORKDIR}/bench_smoke_truncated.json "${half_doc}")
expect_failure(${BENCH_JSON} --file bench_smoke_truncated.json)

file(WRITE ${WORKDIR}/bench_smoke_blank.json "  \n\t\n")
expect_failure(${BENCH_JSON} --file bench_smoke_blank.json)
