# Runs bench_regression, bench_online, bench_faults, and bench_shard
# at smoke-test sizes and validates the emitted JSON against the
# cooper.bench_kernels.v1 / cooper.bench_online.v1 /
# cooper.bench_faults.v1 / cooper.bench_shard.v1 schemas. Only the
# schema and the exact-equivalence bits are checked here — speedup and
# efficiency floors are timing-sensitive and belong to manual
# full-size runs
# (bench_json --min-speedup
#      similarity=3,simd_similarity=1.5,blocking=2,blocking_incremental=3,
#  bench_json --file BENCH_online.json --min-speedup predict=1.5, and
#  bench_json --file BENCH_shard.json --min-efficiency k2=0.5).
# Corrupt documents (empty file, truncated write) must be rejected:
# a bench run that crashed mid-write must not validate.
function(run_step)
    execute_process(COMMAND ${ARGV} WORKING_DIRECTORY ${WORKDIR}
                    RESULT_VARIABLE code OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(NOT code EQUAL 0)
        message(FATAL_ERROR "step failed (${code}): ${ARGV}\n${out}${err}")
    endif()
    message(STATUS "${out}")
endfunction()

function(expect_failure)
    execute_process(COMMAND ${ARGV} WORKING_DIRECTORY ${WORKDIR}
                    RESULT_VARIABLE code OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(code EQUAL 0)
        message(FATAL_ERROR
                "step was expected to fail but passed: ${ARGV}\n${out}")
    endif()
    message(STATUS "rejected as expected: ${err}")
endfunction()

run_step(${BENCH} --tiny --out bench_smoke_kernels.json)
run_step(${BENCH_JSON} --file bench_smoke_kernels.json)

run_step(${BENCH_ONLINE} --tiny --out bench_smoke_online.json)
run_step(${BENCH_JSON} --file bench_smoke_online.json)

run_step(${BENCH_FAULTS} --tiny --out bench_smoke_faults.json)
run_step(${BENCH_JSON} --file bench_smoke_faults.json)

run_step(${BENCH_SHARD} --tiny --out bench_smoke_shard.json)
run_step(${BENCH_JSON} --file bench_smoke_shard.json)

# Corruption regressions: empty document, truncated document, and a
# whitespace-only document must all exit nonzero.
file(WRITE ${WORKDIR}/bench_smoke_empty.json "")
expect_failure(${BENCH_JSON} --file bench_smoke_empty.json)

file(READ ${WORKDIR}/bench_smoke_faults.json whole_doc)
string(LENGTH "${whole_doc}" whole_len)
math(EXPR half_len "${whole_len} / 2")
string(SUBSTRING "${whole_doc}" 0 ${half_len} half_doc)
file(WRITE ${WORKDIR}/bench_smoke_truncated.json "${half_doc}")
expect_failure(${BENCH_JSON} --file bench_smoke_truncated.json)

file(WRITE ${WORKDIR}/bench_smoke_blank.json "  \n\t\n")
expect_failure(${BENCH_JSON} --file bench_smoke_blank.json)
