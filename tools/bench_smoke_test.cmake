# Runs bench_regression and bench_online at smoke-test sizes and
# validates the emitted JSON against the cooper.bench_kernels.v1 /
# cooper.bench_online.v1 schemas. Only the schema and the
# exact-equivalence bits are checked here — speedup floors are
# timing-sensitive and belong to manual full-size runs
# (bench_json --min-speedup similarity=3,blocking=2 and
#  bench_json --file BENCH_online.json --min-speedup predict=1.5).
function(run_step)
    execute_process(COMMAND ${ARGV} WORKING_DIRECTORY ${WORKDIR}
                    RESULT_VARIABLE code OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(NOT code EQUAL 0)
        message(FATAL_ERROR "step failed (${code}): ${ARGV}\n${out}${err}")
    endif()
    message(STATUS "${out}")
endfunction()

run_step(${BENCH} --tiny --out bench_smoke_kernels.json)
run_step(${BENCH_JSON} --file bench_smoke_kernels.json)

run_step(${BENCH_ONLINE} --tiny --out bench_smoke_online.json)
run_step(${BENCH_JSON} --file bench_smoke_online.json)
