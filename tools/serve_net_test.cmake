# Loopback round-trip for the TCP service plane: `cooper_cli serve
# --listen` serves a trace_gen trace to a multi-connection load_gen
# replay, and the summary every party ends up holding — the server's
# --out, each client's received Summary bytes — must be byte-identical
# to the in-process `cooper_cli serve --trace` replay of the same
# (trace, seed, config). Both transports (batched and the per-message
# baseline) and both drivers (flat and sharded) are held to it.
# Dispatch hygiene rides along: unknown subcommands and unknown flags
# are hard failures that name the offender.
function(run_step)
    execute_process(COMMAND ${ARGV} WORKING_DIRECTORY ${WORKDIR}
                    RESULT_VARIABLE code OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(NOT code EQUAL 0)
        message(FATAL_ERROR "step failed (${code}): ${ARGV}\n${out}${err}")
    endif()
    message(STATUS "${out}")
endfunction()

# Expect nonzero exit AND the named offender in the diagnostics.
function(expect_failure_naming pattern)
    set(cmd ${ARGV})
    list(REMOVE_AT cmd 0)
    execute_process(COMMAND ${cmd} WORKING_DIRECTORY ${WORKDIR}
                    RESULT_VARIABLE code OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(code EQUAL 0)
        message(FATAL_ERROR
                "step was expected to fail but passed: ${cmd}\n${out}")
    endif()
    if(NOT "${out}${err}" MATCHES "${pattern}")
        message(FATAL_ERROR
                "failure did not name '${pattern}': ${cmd}\n${out}${err}")
    endif()
    message(STATUS "rejected as expected: ${err}")
endfunction()

function(require_identical a b what)
    execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                    ${WORKDIR}/${a} ${WORKDIR}/${b}
                    RESULT_VARIABLE code)
    if(NOT code EQUAL 0)
        message(FATAL_ERROR "${what}: ${a} and ${b} differ")
    endif()
endfunction()

function(wait_for_file path what)
    foreach(attempt RANGE 300)
        if(EXISTS ${WORKDIR}/${path})
            return()
        endif()
        execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
    endforeach()
    message(FATAL_ERROR "${what}: timed out waiting for ${path}")
endfunction()

# The port file existing is not enough — the server creates it, then
# writes the port, and the read below must not land in between. Poll
# until the content is an actual port number.
function(wait_for_port_file path out_var what)
    foreach(attempt RANGE 300)
        if(EXISTS ${WORKDIR}/${path})
            file(READ ${WORKDIR}/${path} port)
            string(STRIP "${port}" port)
            if(port MATCHES "^[0-9]+$")
                set(${out_var} "${port}" PARENT_SCOPE)
                return()
            endif()
        endif()
        execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
    endforeach()
    message(FATAL_ERROR "${what}: timed out waiting for ${path}")
endfunction()

# Serve one --listen run in the background and replay the trace into
# it with load_gen; ${tag}_server.json / ${tag}_client.json hold the
# two summaries afterwards. The done-marker (written after the server
# process exits) is what closes the race between "summary file exists"
# and "summary file is fully written".
function(serve_round_trip tag connections)
    set(server_flags ${ARGN})
    file(REMOVE ${WORKDIR}/${tag}_port.txt ${WORKDIR}/${tag}_done.txt)
    string(JOIN " " server_args ${server_flags})
    execute_process(
        COMMAND sh -c "{ ${CLI} serve --listen --port-file ${tag}_port.txt \
--trace serve_net_trace.txt ${server_args} --out ${tag}_server.json \
> ${tag}_server.log 2>&1; echo done > ${tag}_done.txt; } \
< /dev/null > /dev/null 2>&1 &"
        WORKING_DIRECTORY ${WORKDIR} RESULT_VARIABLE code)
    if(NOT code EQUAL 0)
        message(FATAL_ERROR "${tag}: failed to launch the server")
    endif()
    wait_for_port_file(${tag}_port.txt port
                       "${tag}: server never came up")
    run_step(${LOAD_GEN} --trace serve_net_trace.txt --port ${port}
             --connections ${connections} --out ${tag}_client.json)
    wait_for_file(${tag}_done.txt "${tag}: server never exited")
endfunction()

# Dispatch hygiene: a typo must name itself, never silently no-op.
expect_failure_naming("unknown subcommand 'frobnicate'"
                      ${CLI} frobnicate --seed 1)
expect_failure_naming("unknown flag --no-such-flag"
                      ${CLI} serve --no-such-flag)

run_step(${TRACE_GEN} --arrivals 120 --initial 16 --mean-gap 8
         --mean-life 400 --seed 7 --out serve_net_trace.txt)

# Flat driver: the in-process replay is the reference.
run_step(${CLI} serve --trace serve_net_trace.txt --seed 11
         --threads 2 --out serve_net_ref.json)

serve_round_trip(serve_net_batched 3 --seed 11 --threads 2)
require_identical(serve_net_ref.json serve_net_batched_server.json
                  "served (batched) summary diverged from in-process")
require_identical(serve_net_ref.json serve_net_batched_client.json
                  "client summary diverged from in-process")

serve_round_trip(serve_net_permsg 2 --seed 11 --threads 2 --batched 0)
require_identical(serve_net_ref.json serve_net_permsg_server.json
                  "per-message transport changed the served results")
require_identical(serve_net_ref.json serve_net_permsg_client.json
                  "per-message client summary diverged")

# Sharded fleet behind the same socket plane.
run_step(${CLI} serve --trace serve_net_trace.txt --seed 11
         --threads 2 --shards 4 --out serve_net_shard_ref.json)

serve_round_trip(serve_net_shard 3 --seed 11 --threads 2 --shards 4)
require_identical(serve_net_shard_ref.json serve_net_shard_server.json
                  "served sharded summary diverged from in-process")
require_identical(serve_net_shard_ref.json serve_net_shard_client.json
                  "sharded client summary diverged from in-process")
