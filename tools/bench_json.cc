/**
 * @file
 * bench_json — python-free validation of the bench JSON documents.
 *
 * Parses a document with the in-tree JSON reader and dispatches on its
 * "schema" field:
 *
 *  - "cooper.bench_kernels.v1" (bench_regression): a workload object
 *    with the run's dimensions, and a phases object holding the seven
 *    kernel phases;
 *  - "cooper.bench_online.v1" (bench_online): the online-service
 *    workload shape, a phases object with the warm-started `predict`
 *    comparison and the `epoch` throughput, and an online counters
 *    object;
 *  - "cooper.bench_faults.v1" (bench_faults): the online workload
 *    shape, `clean` and `degraded` throughput phases, and a faults
 *    object with the injected-fault counters and the degradation
 *    ratios (blocking_ratio, throughput_ratio);
 *  - "cooper.bench_shard.v1" (bench_shard): the sharded workload
 *    shape, one `scale<K>` phase per shard count above one, and a
 *    shards object with at least two per-shard-count rows (wall
 *    clock, speedup, efficiency = speedup/K, egalitarian objective,
 *    migrations);
 *  - "cooper.bench_serve.v1" (bench_serve): the served workload
 *    shape, the `serve` throughput, `batched_decode` comparison, and
 *    `runs_per_server` multi-run-efficiency phases, and a latency
 *    object with the sustained arrival rate and the client-observed
 *    RTT / epoch-completion tails;
 *  - "cooper.bench_coalition.v1" (bench_coalition): the coalition
 *    workload shape and a groups object with one row per group size
 *    (blocking counts for the formation and the packed SR/SMR
 *    baselines, blocking_ratio, welfare and fairness columns, and the
 *    identical_across_threads determinism verdict, which must be
 *    true).
 *
 * Empty, truncated, or otherwise corrupt documents are hard failures
 * (exit 1) — a bench run that crashed mid-write must not validate.
 *
 * Every phase carries mode / baseline_seconds / optimized_seconds /
 * speedup / identical / metric fields; phases in baseline_vs_optimized
 * mode must report identical == true (the equivalence gate) and a
 * positive speedup.
 *
 * --min-speedup takes phase=value pairs so a perf run can enforce the
 * acceptance numbers. Every floor is checked before the verdict: a
 * failing run reports ALL offending phases, each with its measured
 * value against the required one, so one fix-and-rerun cycle sees the
 * whole damage:
 *
 *   bench_json --file BENCH_kernels.json \
 *       --min-speedup similarity=3,blocking=2
 *   bench_json --file BENCH_online.json --min-speedup predict=1.5
 *
 * --min-efficiency does the same for the shard document's per-count
 * scaling efficiency:
 *
 *   bench_json --file BENCH_shard.json --min-efficiency k2=0.5
 *
 * --max-blocking-ratio is the coalition document's stability ceiling:
 * the formation's blocking-coalition count relative to the packed
 * stable-roommates baseline at the same capacity must not exceed the
 * bound (1 = "never less stable than packed pairs"):
 *
 *   bench_json --file BENCH_coalition.json \
 *       --max-blocking-ratio g3=1,g4=1
 */

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "util/cli.hh"
#include "util/error.hh"

namespace {

using namespace cooper;

constexpr const char *kKernelsSchema = "cooper.bench_kernels.v1";
constexpr const char *kOnlineSchema = "cooper.bench_online.v1";
constexpr const char *kFaultsSchema = "cooper.bench_faults.v1";
constexpr const char *kShardSchema = "cooper.bench_shard.v1";
constexpr const char *kServeSchema = "cooper.bench_serve.v1";
constexpr const char *kCoalitionSchema = "cooper.bench_coalition.v1";

const char *const kKernelPhases[] = {
    "similarity", "simd_similarity",      "predict", "matching",
    "blocking",   "blocking_incremental", "shapley"};

const char *const kKernelWorkloadFields[] = {
    "matrix",        "population", "samples", "shapley_agents",
    "alpha",         "density",    "reps",    "threads"};

const char *const kOnlinePhases[] = {"predict", "epoch"};

const char *const kOnlineWorkloadFields[] = {"events", "epochs", "types",
                                             "arrivals", "threads"};

const char *const kOnlineCounterFields[] = {
    "migrations", "pairs_broken", "full_rematches", "predict_cache_hits",
    "recomputed_pairs"};

const char *const kFaultsPhases[] = {"clean", "degraded"};

const char *const kShardWorkloadFields[] = {
    "events", "arrivals", "types", "threads", "rebalance_budget"};

const char *const kShardRowFields[] = {
    "shards",          "wall_seconds",     "speedup",   "efficiency",
    "egalitarian_final", "egalitarian_mean", "migrations", "epochs"};

const char *const kServePhases[] = {"serve", "batched_decode",
                                    "runs_per_server"};

const char *const kServeWorkloadFields[] = {
    "events", "epochs",      "types",  "arrivals",
    "runs",   "connections", "threads"};

const char *const kServeLatencyFields[] = {
    "arrivals_per_sec", "rtt_p50_ms",   "rtt_p99_ms", "rtt_p999_ms",
    "epoch_p50_ms",     "epoch_p99_ms", "epoch_p999_ms"};

const char *const kCoalitionWorkloadFields[] = {
    "agents", "trials", "types", "threads", "shapley_samples"};

/** Non-negative numeric columns of one groups.g<G> row. */
const char *const kCoalitionRowFields[] = {
    "group_size",         "machines",
    "trials",             "core_stable_trials",
    "rounds_mean",        "blocking_coalition",
    "blocking_sr",        "blocking_smr",
    "blocking_ratio",     "mean_penalty_coalition",
    "mean_penalty_sr",    "mean_penalty_smr",
    "egalitarian_coalition", "egalitarian_sr",
    "egalitarian_smr"};

/** Rank correlations: numeric, bounded to [-1, 1]. */
const char *const kCoalitionFairnessFields[] = {
    "fairness_coalition", "fairness_sr", "fairness_smr"};

const char *const kFaultsCounterFields[] = {
    "injected",          "retries",           "quarantined",
    "quarantine_released", "abandoned",       "crashes",
    "cf_fallbacks",      "checkpoint_failures", "clean_blocking",
    "degraded_blocking", "blocking_ratio",    "throughput_ratio"};

const JsonValue &
member(const JsonValue &object, const std::string &key,
       const std::string &where)
{
    const JsonValue *value = object.find(key);
    fatalIf(value == nullptr, "bench_json: ", where, " lacks \"", key,
            "\"");
    return *value;
}

double
numberField(const JsonValue &object, const std::string &key,
            const std::string &where)
{
    const JsonValue &value = member(object, key, where);
    fatalIf(!value.isNumber(), "bench_json: ", where, ".", key,
            " is not a number");
    return value.number;
}

/** Split "phase=value,phase=value" into pairs. */
std::vector<std::pair<std::string, double>>
parseMinSpeedups(const std::string &csv)
{
    std::vector<std::pair<std::string, double>> out;
    std::size_t start = 0;
    while (start < csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? csv.size() : comma;
        const std::string item = csv.substr(start, end - start);
        const std::size_t eq = item.find('=');
        fatalIf(eq == std::string::npos || eq == 0 ||
                    eq + 1 >= item.size(),
                "bench_json: bad --min-speedup entry \"", item,
                "\"; want phase=value");
        out.emplace_back(item.substr(0, eq),
                         std::stod(item.substr(eq + 1)));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

void
checkPhase(const JsonValue &phase, const std::string &name)
{
    const std::string where = "phases." + name;
    fatalIf(!phase.isObject(), "bench_json: ", where,
            " is not an object");

    const JsonValue &mode = member(phase, "mode", where);
    fatalIf(!mode.isString() ||
                (mode.text != "baseline_vs_optimized" &&
                 mode.text != "optimized_only"),
            "bench_json: ", where, ".mode is not a known mode");

    const double baseline =
        numberField(phase, "baseline_seconds", where);
    const double optimized =
        numberField(phase, "optimized_seconds", where);
    const double speedup = numberField(phase, "speedup", where);
    fatalIf(baseline < 0.0 || optimized < 0.0,
            "bench_json: ", where, " has negative seconds");

    const JsonValue &identical = member(phase, "identical", where);
    fatalIf(identical.kind != JsonValue::Kind::Bool,
            "bench_json: ", where, ".identical is not a boolean");

    fatalIf(!member(phase, "metric", where).isString(),
            "bench_json: ", where, ".metric is not a string");
    numberField(phase, "metric_count", where);
    numberField(phase, "metric_sum", where);

    if (mode.text == "baseline_vs_optimized") {
        fatalIf(!identical.boolean, "bench_json: ", where,
                " compared kernels whose outputs differ");
        fatalIf(speedup <= 0.0, "bench_json: ", where,
                " has a non-positive speedup");
    }
}

void
checkTinyFlag(const JsonValue &workload)
{
    fatalIf(member(workload, "tiny", "workload").kind !=
                JsonValue::Kind::Bool,
            "bench_json: workload.tiny is not a boolean");
}

void
validateKernels(const JsonValue &root, const std::string &path)
{
    const JsonValue &workload = member(root, "workload", path);
    fatalIf(!workload.isObject(),
            "bench_json: workload is not an object");
    for (const char *field : kKernelWorkloadFields)
        numberField(workload, field, "workload");
    checkTinyFlag(workload);

    const JsonValue &phases = member(root, "phases", path);
    fatalIf(!phases.isObject(), "bench_json: phases is not an object");
    for (const char *name : kKernelPhases)
        checkPhase(member(phases, name, "phases"), name);
}

void
validateOnline(const JsonValue &root, const std::string &path)
{
    const JsonValue &workload = member(root, "workload", path);
    fatalIf(!workload.isObject(),
            "bench_json: workload is not an object");
    for (const char *field : kOnlineWorkloadFields)
        numberField(workload, field, "workload");
    checkTinyFlag(workload);

    const JsonValue &phases = member(root, "phases", path);
    fatalIf(!phases.isObject(), "bench_json: phases is not an object");
    for (const char *name : kOnlinePhases)
        checkPhase(member(phases, name, "phases"), name);

    const JsonValue &counters = member(root, "online", path);
    fatalIf(!counters.isObject(),
            "bench_json: online is not an object");
    for (const char *field : kOnlineCounterFields)
        fatalIf(numberField(counters, field, "online") < 0.0,
                "bench_json: online.", field, " is negative");
}

void
validateFaults(const JsonValue &root, const std::string &path)
{
    const JsonValue &workload = member(root, "workload", path);
    fatalIf(!workload.isObject(),
            "bench_json: workload is not an object");
    for (const char *field : kOnlineWorkloadFields)
        numberField(workload, field, "workload");
    checkTinyFlag(workload);

    const JsonValue &phases = member(root, "phases", path);
    fatalIf(!phases.isObject(), "bench_json: phases is not an object");
    for (const char *name : kFaultsPhases)
        checkPhase(member(phases, name, "phases"), name);

    const JsonValue &faults = member(root, "faults", path);
    fatalIf(!faults.isObject(),
            "bench_json: faults is not an object");
    for (const char *field : kFaultsCounterFields)
        fatalIf(numberField(faults, field, "faults") < 0.0,
                "bench_json: faults.", field, " is negative");

    // A faults document that injected nothing measured nothing: the
    // degraded phase would silently equal the clean one.
    fatalIf(numberField(faults, "injected", "faults") <= 0.0,
            "bench_json: faults.injected is zero — the degraded run "
            "exercised no faults");
    fatalIf(numberField(faults, "throughput_ratio", "faults") <= 0.0,
            "bench_json: faults.throughput_ratio is not positive");
}

void
validateShard(const JsonValue &root, const std::string &path)
{
    const JsonValue &workload = member(root, "workload", path);
    fatalIf(!workload.isObject(),
            "bench_json: workload is not an object");
    for (const char *field : kShardWorkloadFields)
        numberField(workload, field, "workload");
    checkTinyFlag(workload);

    // Phase names are data ("scale2", "scale4", ...): check whatever
    // the document carries rather than a fixed list.
    const JsonValue &phases = member(root, "phases", path);
    fatalIf(!phases.isObject(), "bench_json: phases is not an object");
    for (const auto &[name, phase] : phases.members)
        checkPhase(phase, name);

    const JsonValue &shards = member(root, "shards", path);
    fatalIf(!shards.isObject(), "bench_json: shards is not an object");
    fatalIf(shards.members.size() < 2,
            "bench_json: shards has fewer than two shard counts — no "
            "scaling was measured");
    for (const auto &[name, row] : shards.members) {
        const std::string where = "shards." + name;
        fatalIf(!row.isObject(), "bench_json: ", where,
                " is not an object");
        for (const char *field : kShardRowFields)
            fatalIf(numberField(row, field, where) < 0.0,
                    "bench_json: ", where, ".", field, " is negative");
        fatalIf(numberField(row, "shards", where) < 1.0,
                "bench_json: ", where, " ran zero shards");
        fatalIf(numberField(row, "efficiency", where) <= 0.0,
                "bench_json: ", where, ".efficiency is not positive");
    }
}

void
validateServe(const JsonValue &root, const std::string &path)
{
    const JsonValue &workload = member(root, "workload", path);
    fatalIf(!workload.isObject(),
            "bench_json: workload is not an object");
    for (const char *field : kServeWorkloadFields)
        numberField(workload, field, "workload");
    checkTinyFlag(workload);

    const JsonValue &phases = member(root, "phases", path);
    fatalIf(!phases.isObject(), "bench_json: phases is not an object");
    for (const char *name : kServePhases)
        checkPhase(member(phases, name, "phases"), name);

    const JsonValue &latency = member(root, "latency", path);
    fatalIf(!latency.isObject(),
            "bench_json: latency is not an object");
    for (const char *field : kServeLatencyFields)
        fatalIf(numberField(latency, field, "latency") < 0.0,
                "bench_json: latency.", field, " is negative");

    // A serve document with no sustained rate served nothing: the
    // latency tails would all be vacuous zeros.
    fatalIf(numberField(latency, "arrivals_per_sec", "latency") <= 0.0,
            "bench_json: latency.arrivals_per_sec is not positive — "
            "the served run moved no events");
}

void
validateCoalition(const JsonValue &root, const std::string &path)
{
    const JsonValue &workload = member(root, "workload", path);
    fatalIf(!workload.isObject(),
            "bench_json: workload is not an object");
    for (const char *field : kCoalitionWorkloadFields)
        numberField(workload, field, "workload");
    checkTinyFlag(workload);

    const JsonValue &groups = member(root, "groups", path);
    fatalIf(!groups.isObject(), "bench_json: groups is not an object");
    fatalIf(groups.members.empty(),
            "bench_json: groups is empty — no group size was measured");
    for (const auto &[name, row] : groups.members) {
        const std::string where = "groups." + name;
        fatalIf(!row.isObject(), "bench_json: ", where,
                " is not an object");
        for (const char *field : kCoalitionRowFields)
            fatalIf(numberField(row, field, where) < 0.0,
                    "bench_json: ", where, ".", field, " is negative");
        for (const char *field : kCoalitionFairnessFields) {
            const double rho = numberField(row, field, where);
            fatalIf(rho < -1.0 || rho > 1.0, "bench_json: ", where,
                    ".", field, " is not a rank correlation");
        }
        fatalIf(numberField(row, "group_size", where) < 2.0,
                "bench_json: ", where, " has a group size below 2");
        const JsonValue &identical =
            member(row, "identical_across_threads", where);
        fatalIf(identical.kind != JsonValue::Kind::Bool,
                "bench_json: ", where,
                ".identical_across_threads is not a boolean");
        fatalIf(!identical.boolean, "bench_json: ", where,
                " formation diverged across thread counts");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    CliFlags flags;
    flags.declare("file", "BENCH_kernels.json",
                  "bench_regression JSON document to validate");
    flags.declare("min-speedup", "",
                  "comma-separated phase=value floors to enforce");
    flags.declare("min-efficiency", "",
                  "comma-separated shard-row=value efficiency floors "
                  "(cooper.bench_shard.v1 only), e.g. k2=0.5");
    flags.declare("max-blocking-ratio", "",
                  "comma-separated group-row=value stability ceilings "
                  "(cooper.bench_coalition.v1 only), e.g. g3=1,g4=1");
    try {
        if (!flags.parse(argc, argv))
            return 0;
        const std::string path = flags.get("file");
        const JsonValue root = parseJsonFile(path);
        fatalIf(!root.isObject(), "bench_json: ", path,
                " is not a JSON object");

        const JsonValue &schema = member(root, "schema", path);
        fatalIf(!schema.isString(), "bench_json: ", path,
                " schema is not a string");
        if (schema.text == kKernelsSchema)
            validateKernels(root, path);
        else if (schema.text == kOnlineSchema)
            validateOnline(root, path);
        else if (schema.text == kFaultsSchema)
            validateFaults(root, path);
        else if (schema.text == kShardSchema)
            validateShard(root, path);
        else if (schema.text == kServeSchema)
            validateServe(root, path);
        else if (schema.text == kCoalitionSchema)
            validateCoalition(root, path);
        else
            fatal("bench_json: ", path, " has unknown schema \"",
                  schema.text, "\"");

        // Floors: check every requested phase before the verdict so a
        // failing run names all offenders, not just the first.
        std::vector<std::string> violations;
        if (!flags.get("min-speedup").empty()) {
            const JsonValue &phases = member(root, "phases", path);
            for (const auto &[name, floor] :
                 parseMinSpeedups(flags.get("min-speedup"))) {
                const JsonValue &phase = member(phases, name, "phases");
                const double speedup =
                    numberField(phase, "speedup", "phases." + name);
                if (speedup < floor) {
                    std::ostringstream os;
                    os << "bench_json: phase " << name << ": measured "
                          "speedup " << speedup
                       << " is below the required " << floor << "x";
                    violations.push_back(os.str());
                    continue;
                }
                std::cout << "phase " << name << ": speedup " << speedup
                          << " >= " << floor << "x\n";
            }
        }
        if (!flags.get("min-efficiency").empty()) {
            fatalIf(schema.text != kShardSchema,
                    "bench_json: --min-efficiency only applies to ",
                    kShardSchema, " documents");
            const JsonValue &shards = member(root, "shards", path);
            for (const auto &[name, floor] :
                 parseMinSpeedups(flags.get("min-efficiency"))) {
                const JsonValue &row = member(shards, name, "shards");
                const double efficiency =
                    numberField(row, "efficiency", "shards." + name);
                if (efficiency < floor) {
                    std::ostringstream os;
                    os << "bench_json: shard row " << name
                       << ": measured efficiency " << efficiency
                       << " is below the required " << floor;
                    violations.push_back(os.str());
                    continue;
                }
                std::cout << "shards " << name << ": efficiency "
                          << efficiency << " >= " << floor << "\n";
            }
        }
        if (!flags.get("max-blocking-ratio").empty()) {
            fatalIf(schema.text != kCoalitionSchema,
                    "bench_json: --max-blocking-ratio only applies to ",
                    kCoalitionSchema, " documents");
            const JsonValue &groups = member(root, "groups", path);
            for (const auto &[name, ceiling] :
                 parseMinSpeedups(flags.get("max-blocking-ratio"))) {
                const JsonValue &row = member(groups, name, "groups");
                const double ratio = numberField(row, "blocking_ratio",
                                                 "groups." + name);
                if (ratio > ceiling) {
                    std::ostringstream os;
                    os << "bench_json: group row " << name
                       << ": measured blocking ratio " << ratio
                       << " exceeds the allowed " << ceiling;
                    violations.push_back(os.str());
                    continue;
                }
                std::cout << "groups " << name << ": blocking ratio "
                          << ratio << " <= " << ceiling << "\n";
            }
        }
        if (!violations.empty()) {
            for (const std::string &violation : violations)
                std::cerr << violation << "\n";
            std::cerr << "bench_json: " << path << ": "
                      << violations.size()
                      << " floor(s) not met\n";
            return 1;
        }
        std::cout << "bench_json: " << path << " OK\n";
    } catch (const std::exception &err) {
        std::cerr << err.what() << "\n";
        return 1;
    }
    return 0;
}
