# Smoke-tests the online service end to end and holds its determinism
# contract: the same (trace, seed, config) must emit byte-identical
# summary JSON at any thread count, with or without the incremental
# predictor, and across a checkpoint/restore split.
function(run_step)
    execute_process(COMMAND ${ARGV} WORKING_DIRECTORY ${WORKDIR}
                    RESULT_VARIABLE code OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(NOT code EQUAL 0)
        message(FATAL_ERROR "step failed (${code}): ${ARGV}\n${out}${err}")
    endif()
    message(STATUS "${out}")
endfunction()

function(require_identical a b what)
    execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                    ${WORKDIR}/${a} ${WORKDIR}/${b}
                    RESULT_VARIABLE code)
    if(NOT code EQUAL 0)
        message(FATAL_ERROR "${what}: ${a} and ${b} differ")
    endif()
endfunction()

run_step(${TRACE_GEN} --arrivals 120 --initial 16 --mean-gap 8
         --mean-life 400 --seed 7 --out serve_trace.txt)

# Same trace, three thread counts: summaries must be byte-identical.
run_step(${CLI} serve --trace serve_trace.txt --seed 11 --threads 1
         --out serve_t1.json)
run_step(${CLI} serve --trace serve_trace.txt --seed 11 --threads 2
         --out serve_t2.json)
run_step(${CLI} serve --trace serve_trace.txt --seed 11 --threads 0
         --out serve_t0.json)
require_identical(serve_t1.json serve_t2.json
                  "serve is not thread-count deterministic")
require_identical(serve_t1.json serve_t0.json
                  "serve is not thread-count deterministic")

# Incremental prediction is a pure wall-clock optimization: forcing a
# from-scratch re-predict every epoch must not change a byte.
run_step(${CLI} serve --trace serve_trace.txt --seed 11 --threads 2
         --full-predict 1 --out serve_full.json)
require_identical(serve_t1.json serve_full.json
                  "incremental prediction changed results")

# Checkpoint/restore round-trip through io/serialize: resuming from a
# final checkpoint (the remaining trace suffix is empty) must leave
# the driver state byte-for-byte unchanged. Mid-run splits are held by
# tests/test_online_driver.cc, which can cut the trace at any epoch.
run_step(${CLI} serve --trace serve_trace.txt --seed 11 --threads 2
         --out serve_whole.json --checkpoint serve_whole.state)
run_step(${CLI} serve --trace serve_trace.txt --seed 11 --threads 2
         --restore serve_whole.state --out serve_resumed.json
         --checkpoint serve_resumed.state)
require_identical(serve_whole.state serve_resumed.state
                  "restore drifted the driver state")

# The emitted summary must validate against the JSON reader used by
# the bench validator (well-formedness is asserted by the parser).
run_step(${CLI} serve --trace serve_trace.txt --seed 11 --threads 2
         --out serve_obs.json --metrics-out serve_metrics.json
         --trace-out serve_spans.json)
run_step(${TRACE_CHECK} --trace serve_spans.json
         --metrics serve_metrics.json
         --require online.run,online.epoch,online.predict,online.repair)
