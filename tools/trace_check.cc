/**
 * @file
 * trace_check — python-free validation of the observability outputs.
 *
 * Parses a Chrome-trace JSON file (and optionally a metrics JSON file)
 * with the in-tree JSON reader and asserts the schema the emitters
 * promise: a traceEvents array of complete ("ph": "X") events carrying
 * name/cat/ts/dur/pid/tid and a nesting depth, and a metrics document
 * with counters/gauges/histograms sections. --require takes a
 * comma-separated list of span names that must appear, so the pipeline
 * test can prove every instrumented phase actually emitted.
 *
 *   trace_check --trace t.json --metrics m.json \
 *       --require framework.epoch,cf.predict
 */

#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "util/cli.hh"
#include "util/error.hh"

namespace {

using namespace cooper;

/** Split a comma-separated flag value; empty input gives no entries. */
std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? csv.size() : comma;
        if (end > start)
            out.push_back(csv.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

const JsonValue &
member(const JsonValue &object, const std::string &key,
       const std::string &where)
{
    const JsonValue *value = object.find(key);
    fatalIf(value == nullptr, "trace_check: ", where, " lacks \"", key,
            "\"");
    return *value;
}

/** Validate one traceEvents entry; returns its name. */
std::string
checkEvent(const JsonValue &event, std::size_t index)
{
    const std::string where =
        "traceEvents[" + std::to_string(index) + "]";
    fatalIf(!event.isObject(), "trace_check: ", where,
            " is not an object");

    const JsonValue &name = member(event, "name", where);
    fatalIf(!name.isString() || name.text.empty(), "trace_check: ",
            where, " has a non-string or empty name");
    fatalIf(!member(event, "cat", where).isString(), "trace_check: ",
            where, " has a non-string cat");
    fatalIf(!member(event, "pid", where).isNumber(), "trace_check: ",
            where, " has a non-number pid");
    fatalIf(!member(event, "tid", where).isNumber(), "trace_check: ",
            where, " has a non-number tid");

    const JsonValue &ts = member(event, "ts", where);
    fatalIf(!ts.isNumber() || ts.number < 0.0, "trace_check: ", where,
            " has a bad ts");

    const JsonValue &ph = member(event, "ph", where);
    fatalIf(!ph.isString(), "trace_check: ", where,
            " has a non-string ph");
    if (ph.text == "X") {
        const JsonValue &dur = member(event, "dur", where);
        fatalIf(!dur.isNumber() || dur.number < 0.0, "trace_check: ",
                where, " has a bad dur");
        const JsonValue &args = member(event, "args", where);
        const JsonValue &depth = member(args, "depth", where + ".args");
        fatalIf(!depth.isNumber() || depth.number < 1.0,
                "trace_check: ", where, " has a bad span depth");
    }
    return name.text;
}

/** Validate the trace document; returns the set of event names. */
std::set<std::string>
checkTrace(const std::string &path)
{
    const JsonValue root = parseJsonFile(path);
    fatalIf(!root.isObject(), "trace_check: ", path,
            " is not a JSON object");
    const JsonValue &events = member(root, "traceEvents", path);
    fatalIf(!events.isArray(), "trace_check: traceEvents is not an "
            "array in ", path);
    fatalIf(events.items.empty(), "trace_check: ", path,
            " holds no trace events");

    std::set<std::string> names;
    for (std::size_t i = 0; i < events.items.size(); ++i)
        names.insert(checkEvent(events.items[i], i));
    std::cout << "trace " << path << ": " << events.items.size()
              << " event(s), " << names.size() << " span name(s)\n";
    return names;
}

void
checkMetrics(const std::string &path)
{
    const JsonValue root = parseJsonFile(path);
    fatalIf(!root.isObject(), "trace_check: ", path,
            " is not a JSON object");
    for (const char *section : {"counters", "gauges", "histograms"})
        fatalIf(!member(root, section, path).isObject(),
                "trace_check: \"", section, "\" is not an object in ",
                path);

    const JsonValue &histograms = *root.find("histograms");
    for (const auto &[name, histogram] : histograms.members) {
        for (const char *field :
             {"count", "sum", "mean", "min", "max", "stddev"})
            member(histogram, field, "histogram " + name);
        const JsonValue &buckets =
            member(histogram, "buckets", "histogram " + name);
        fatalIf(!buckets.isArray(), "trace_check: histogram ", name,
                " buckets is not an array");
        for (const JsonValue &bucket : buckets.items) {
            member(bucket, "le", "histogram " + name + " bucket");
            fatalIf(!member(bucket, "count",
                            "histogram " + name + " bucket")
                         .isNumber(),
                    "trace_check: histogram ", name,
                    " bucket count is not a number");
        }
    }
    const std::size_t series = root.find("counters")->members.size() +
                               root.find("gauges")->members.size() +
                               histograms.members.size();
    fatalIf(series == 0, "trace_check: ", path, " holds no metrics");
    std::cout << "metrics " << path << ": " << series << " series\n";
}

} // namespace

int
main(int argc, char **argv)
{
    CliFlags flags;
    flags.declare("trace", "", "Chrome-trace JSON file to validate");
    flags.declare("metrics", "", "metrics JSON file to validate");
    flags.declare("require", "",
                  "comma-separated span names that must appear");
    try {
        if (!flags.parse(argc, argv))
            return 0;
        const std::string trace = flags.get("trace");
        const std::string metrics = flags.get("metrics");
        fatalIf(trace.empty() && metrics.empty(),
                "trace_check: nothing to check; pass --trace and/or "
                "--metrics");

        std::set<std::string> names;
        if (!trace.empty())
            names = checkTrace(trace);
        if (!metrics.empty())
            checkMetrics(metrics);
        for (const std::string &name : splitList(flags.get("require")))
            fatalIf(names.count(name) == 0, "trace_check: required "
                    "span \"", name, "\" missing from ", trace);
    } catch (const std::exception &err) {
        std::cerr << err.what() << "\n";
        return 1;
    }
    std::cout << "trace_check: OK\n";
    return 0;
}
