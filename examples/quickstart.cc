/**
 * @file
 * Quickstart: colocate a small batch of jobs with Cooper and inspect
 * the outcome.
 *
 * Demonstrates the minimal public API surface:
 *   1. pick the job catalog and a cluster interference model,
 *   2. describe the arriving jobs,
 *   3. run one epoch of the colocation game,
 *   4. read assignments, penalties, and agent recommendations.
 */

#include <iomanip>
#include <iostream>

#include "core/framework.hh"
#include "workload/catalog.hh"

int
main()
{
    using namespace cooper;

    // The paper's 20-job Spark/PARSEC catalog and a CMP model with
    // default (Xeon E5-2697 v2-like) memory-subsystem parameters.
    const Catalog catalog = Catalog::paperTableI();
    const InterferenceModel model(catalog);

    // Eight users submit jobs this epoch.
    std::vector<JobTypeId> jobs;
    for (const char *name : {"correlation", "dedup", "swaptions", "x264",
                             "svm", "kmeans", "streamc", "bodytrack"}) {
        jobs.push_back(catalog.jobByName(name).id);
    }

    // Configure Cooper: stable-roommate matching over preferences
    // predicted from 25%-sampled profiles.
    FrameworkConfig config;
    config.policy = "SR";
    config.sampleRatio = 0.25;

    CooperFramework cooper(catalog, model, config, /*seed=*/42);
    const EpochReport report = cooper.runEpoch(jobs);

    std::cout << std::fixed << std::setprecision(4);
    std::cout << "Cooper quickstart: " << jobs.size()
              << " jobs, policy " << config.policy << "\n\n";
    std::cout << "Colocations:\n";
    for (const auto &[a, b] : report.matching.pairs()) {
        std::cout << "  " << catalog.job(jobs[a]).name << " + "
                  << catalog.job(jobs[b]).name << "  (penalties "
                  << report.penalties[a] << ", " << report.penalties[b]
                  << ")\n";
    }

    std::cout << "\nMean throughput penalty: " << report.meanPenalty
              << "\nPreference-prediction accuracy: "
              << report.predictionAccuracy
              << "\nBlocking pairs: " << report.blockingPairs
              << "\nAgents recommending break-away: "
              << report.breakAwayAgents << "\n";

    std::cout << "\nDispatch: makespan " << report.dispatch.makespanSec
              << " s over " << report.dispatch.completions.size()
              << " machine-pairs, utilization "
              << report.dispatch.utilization << "\n";
    return 0;
}
