/**
 * @file
 * Datacenter epochs: run several scheduling periods of the colocation
 * game on a fixed machine pool, the workload the paper's introduction
 * motivates (batch analytics sharing big servers).
 *
 * Each epoch, a new batch of jobs arrives, agents predict preferences
 * from freshly sampled profiles, the coordinator matches them, and
 * the dispatcher queues pairs on a 10-CMP cluster. The example prints
 * per-epoch performance, fairness, and stability, and accumulates
 * utilization statistics across epochs.
 */

#include <iostream>

#include "core/framework.hh"
#include "game/fairness.hh"
#include "stats/online.hh"
#include "util/cli.hh"
#include "util/table.hh"
#include "workload/population.hh"

int
main(int argc, char **argv)
{
    using namespace cooper;

    CliFlags flags;
    flags.declare("epochs", "6", "scheduling periods to simulate");
    flags.declare("agents", "120", "jobs arriving per epoch");
    flags.declare("machines", "10", "chip multiprocessors available");
    flags.declare("policy", "SMR", "GR|CO|SMP|SMR|SR|TH");
    flags.declare("mix", "Uniform",
                  "Uniform|Beta-Low|Gaussian|Beta-High");
    flags.declare("seed", "2026", "RNG seed");
    if (!flags.parse(argc, argv))
        return 0;

    const Catalog catalog = Catalog::paperTableI();
    const InterferenceModel model(catalog);

    MixKind mix = MixKind::Uniform;
    for (MixKind candidate : allMixes())
        if (mixName(candidate) == flags.get("mix"))
            mix = candidate;

    FrameworkConfig config;
    config.policy = flags.get("policy");
    config.sampleRatio = 0.25;
    config.machines = static_cast<std::size_t>(flags.getInt("machines"));
    config.alpha = 0.02;

    const auto seed = static_cast<std::uint64_t>(flags.getInt("seed"));
    CooperFramework cooper(catalog, model, config, seed);
    Rng rng(seed + 1);

    std::cout << "Simulating " << flags.getInt("epochs")
              << " scheduling epochs: " << flags.getInt("agents")
              << " jobs per epoch on " << config.machines
              << " CMPs, policy " << config.policy << ", mix "
              << flags.get("mix") << "\n\n";

    Table table({"epoch", "mean_penalty", "fairness_corr",
                 "blocking_pairs", "break_away_agents", "makespan_s",
                 "utilization"});
    OnlineStats penalty_acc, util_acc;
    for (std::int64_t epoch = 0; epoch < flags.getInt("epochs");
         ++epoch) {
        const auto population = samplePopulation(
            catalog, static_cast<std::size_t>(flags.getInt("agents")),
            mix, rng);
        const EpochReport report = cooper.runEpoch(population);

        ColocationInstance instance = cooper.buildInstance(population);
        const auto rows = penaltiesByType(
            catalog, population, report.matching,
            [&](AgentId a, AgentId b) {
                return instance.trueDisutility(a, b);
            });

        penalty_acc.add(report.meanPenalty);
        util_acc.add(report.dispatch.utilization);
        table.addRow({Table::num(static_cast<long long>(epoch + 1)),
                      Table::num(report.meanPenalty, 4),
                      Table::num(fairness(rows).rankCorrelation, 3),
                      Table::num(static_cast<long long>(
                          report.blockingPairs)),
                      Table::num(static_cast<long long>(
                          report.breakAwayAgents)),
                      Table::num(report.dispatch.makespanSec, 0),
                      Table::num(report.dispatch.utilization, 3)});
    }
    table.print(std::cout);

    std::cout << "\nAcross epochs: mean penalty "
              << Table::num(penalty_acc.mean(), 4) << " (stddev "
              << Table::num(penalty_acc.stddev(), 4)
              << "), mean utilization "
              << Table::num(util_acc.mean(), 3) << "\n";
    std::cout << "Try --policy GR to see the same workload under the "
                 "performance-centric\nbaseline: penalties stay "
                 "similar but fairness and stability collapse.\n";
    return 0;
}
