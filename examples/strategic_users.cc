/**
 * @file
 * Strategic users: what the action recommender tells each user, and
 * what happens to a shared cluster when blocking pairs defect.
 *
 * Colocates a population under a chosen policy, runs the agents'
 * message-exchange protocol, and then *simulates the defections*:
 * every blocking pair breaks away to a private two-job cluster (in
 * mutual-gain order), and the report compares system efficiency
 * before and after the exodus — the fragmentation risk that motivates
 * stable colocation (Section II).
 */

#include <algorithm>
#include <iostream>

#include "core/framework.hh"
#include "util/cli.hh"
#include "util/table.hh"
#include "workload/population.hh"

int
main(int argc, char **argv)
{
    using namespace cooper;

    CliFlags flags;
    flags.declare("agents", "200", "population size");
    flags.declare("policy", "GR", "GR|CO|SMP|SMR|SR");
    flags.declare("alpha", "0.02",
                  "minimum gain for which a user breaks away");
    flags.declare("seed", "7", "RNG seed");
    if (!flags.parse(argc, argv))
        return 0;

    const Catalog catalog = Catalog::paperTableI();
    const InterferenceModel model(catalog);

    FrameworkConfig config;
    config.policy = flags.get("policy");
    config.oracular = true;
    config.alpha = flags.getDouble("alpha");

    const auto seed = static_cast<std::uint64_t>(flags.getInt("seed"));
    CooperFramework cooper(catalog, model, config, seed);
    Rng rng(seed + 3);
    const auto population = samplePopulation(
        catalog, static_cast<std::size_t>(flags.getInt("agents")),
        MixKind::Uniform, rng);

    const EpochReport report = cooper.runEpoch(population);
    ColocationInstance instance = cooper.buildInstance(population);

    std::cout << "Policy " << config.policy << " on "
              << population.size() << " jobs (alpha = "
              << config.alpha << ")\n\n";
    std::cout << "Agents recommending break-away: "
              << report.breakAwayAgents << " of " << population.size()
              << "\nBlocking pairs discovered via messages: "
              << report.blockingPairs << "\n\n";

    // Show the five most dissatisfied users and their best options.
    std::vector<AgentId> dissatisfied;
    for (AgentId a = 0; a < population.size(); ++a)
        if (report.recommendations[a].action == ActionKind::BreakAway)
            dissatisfied.push_back(a);
    std::stable_sort(dissatisfied.begin(), dissatisfied.end(),
                     [&](AgentId a, AgentId b) {
                         return report.recommendations[a]
                                    .options.front().myGain >
                                report.recommendations[b]
                                    .options.front().myGain;
                     });
    Table top({"user", "job", "current_penalty", "best_partner",
               "partner_job", "my_gain", "partner_gain"});
    for (std::size_t k = 0; k < std::min<std::size_t>(
                                     5, dissatisfied.size());
         ++k) {
        const AgentId a = dissatisfied[k];
        const auto &option =
            report.recommendations[a].options.front();
        top.addRow({Table::num(static_cast<long long>(a)),
                    catalog.job(population[a]).name,
                    Table::num(report.penalties[a], 4),
                    Table::num(static_cast<long long>(option.partner)),
                    catalog.job(population[option.partner]).name,
                    Table::num(option.myGain, 4),
                    Table::num(option.partnerGain, 4)});
    }
    if (top.rows() > 0) {
        std::cout << "Most dissatisfied users:\n";
        top.print(std::cout);
    } else {
        std::cout << "No user wants to break away: the colocation is "
                     "stable at this alpha.\n";
    }

    // Simulate the exodus: greedily commit defections in order of
    // combined gain; each defecting pair leaves its co-runners alone.
    Matching after = report.matching;
    std::size_t defections = 0;
    bool progressed = true;
    while (progressed) {
        progressed = false;
        AgentId best_a = kUnmatched, best_b = kUnmatched;
        double best_gain = 0.0;
        for (AgentId a = 0; a < population.size(); ++a) {
            if (!after.isMatched(a))
                continue;
            const double cur_a =
                instance.trueDisutility(a, after.partnerOf(a));
            for (AgentId b = a + 1; b < population.size(); ++b) {
                if (!after.isMatched(b) || after.partnerOf(a) == b)
                    continue;
                const double gain_a =
                    cur_a - instance.trueDisutility(a, b);
                const double gain_b =
                    instance.trueDisutility(b, after.partnerOf(b)) -
                    instance.trueDisutility(b, a);
                if (gain_a >= config.alpha && gain_b >= config.alpha &&
                    gain_a + gain_b > best_gain) {
                    best_gain = gain_a + gain_b;
                    best_a = a;
                    best_b = b;
                }
            }
        }
        if (best_a != kUnmatched) {
            after.pair(best_a, best_b); // abandons both co-runners
            ++defections;
            progressed = true;
        }
    }

    const std::size_t abandoned =
        population.size() - 2 * after.pairCount();
    std::cout << "\nAfter defections settle: " << defections
              << " pairs broke away; " << abandoned
              << " abandoned jobs now run alone on private machines.\n";
    std::cout << "Machines needed: " << population.size() / 2 << " -> "
              << after.pairCount() + abandoned
              << " (fragmentation cost of ignoring preferences)\n";
    std::cout << "\nRun with --policy SMR to watch the blocking pairs "
                 "(and the exodus)\nessentially disappear.\n";
    return 0;
}
