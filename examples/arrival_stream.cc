/**
 * @file
 * Arrival streams: the paper's deployment setting (Section III.A) —
 * jobs arrive continuously, the game batches them every scheduling
 * period, and pairs dispatch onto whatever machines are free.
 *
 * Sweeps the arrival rate from light to heavy load and reports
 * queueing delay, slowdown, and utilization for a chosen policy, so
 * you can see where the cluster saturates and what colocation buys.
 */

#include <iostream>

#include "core/scheduler.hh"
#include "util/cli.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace cooper;

    CliFlags flags;
    flags.declare("policy", "SMR", "GR|CO|SMP|SMR|SR");
    flags.declare("machines", "10", "chip multiprocessors");
    flags.declare("epoch", "300", "scheduling period in seconds");
    flags.declare("horizon", "20000", "simulated arrival window (s)");
    flags.declare("mix", "Uniform",
                  "Uniform|Beta-Low|Gaussian|Beta-High");
    flags.declare("seed", "11", "RNG seed");
    if (!flags.parse(argc, argv))
        return 0;

    const Catalog catalog = Catalog::paperTableI();
    const InterferenceModel model(catalog);

    MixKind mix = MixKind::Uniform;
    for (MixKind candidate : allMixes())
        if (mixName(candidate) == flags.get("mix"))
            mix = candidate;

    std::cout << "Arrival-stream simulation: policy "
              << flags.get("policy") << ", " << flags.getInt("machines")
              << " machines, " << flags.getInt("epoch")
              << " s epochs, mix " << flags.get("mix") << "\n\n";

    Table table({"arrivals_per_hour", "jobs", "mean_wait_s",
                 "mean_slowdown", "utilization", "left_in_queue"});
    for (double per_hour : {20.0, 60.0, 120.0, 240.0, 480.0}) {
        SchedulerConfig config;
        config.policy = flags.get("policy");
        config.epochSec = static_cast<double>(flags.getInt("epoch"));
        config.arrivalRatePerSec = per_hour / 3600.0;
        config.machines =
            static_cast<std::size_t>(flags.getInt("machines"));
        config.mix = mix;

        EpochScheduler scheduler(
            catalog, model, config,
            static_cast<std::uint64_t>(flags.getInt("seed")));
        const ScheduleTrace trace = scheduler.run(
            static_cast<double>(flags.getInt("horizon")), 10000.0);

        table.addRow({Table::num(per_hour, 0),
                      Table::num(static_cast<long long>(
                          trace.jobs.size())),
                      Table::num(trace.meanWaitSec, 1),
                      Table::num(trace.meanSlowdown, 2),
                      Table::num(trace.utilization, 3),
                      Table::num(static_cast<long long>(
                          trace.epochs.back().queued))});
    }
    table.print(std::cout);
    std::cout << "\nWait and slowdown stay flat until the machine pool "
                 "saturates, then the\nqueue (and both metrics) grow "
                 "without bound — size the cluster near the\nknee. Try "
                 "--policy GR vs --policy SMR: throughput is similar, "
                 "but the\nstable policy keeps strategic users from "
                 "defecting (see\nexamples/strategic_users).\n";
    return 0;
}
