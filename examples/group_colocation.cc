/**
 * @file
 * Group colocation: sharing each CMP among four jobs instead of two
 * (the paper's Section VIII extension).
 *
 * Builds a population, groups it hierarchically (stable-match the
 * jobs, then stable-match the pairs), and contrasts the outcome with
 * greedy packing: per-group penalties, fairness, and the worst-off
 * job under each scheme.
 */

#include <algorithm>
#include <iomanip>
#include <iostream>

#include "core/experiment.hh"
#include "core/groups.hh"
#include "stats/correlation.hh"
#include "util/cli.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace cooper;

    CliFlags flags;
    flags.declare("agents", "64", "population size");
    flags.declare("group-size", "4", "jobs per CMP (power of two)");
    flags.declare("seed", "21", "RNG seed");
    if (!flags.parse(argc, argv))
        return 0;

    const Catalog catalog = Catalog::paperTableI();
    const InterferenceModel model(catalog);
    const auto group_size =
        static_cast<std::size_t>(flags.getInt("group-size"));

    Rng rng(static_cast<std::uint64_t>(flags.getInt("seed")));
    const auto instance = sampleInstance(
        catalog, model, static_cast<std::size_t>(flags.getInt("agents")),
        MixKind::Uniform, rng);

    Rng rng_h(1), rng_g(1);
    const Grouping hier =
        hierarchicalGroups(instance, group_size, rng_h);
    const Grouping greedy = greedyGroups(instance, group_size, rng_g);

    std::cout << std::fixed << std::setprecision(4);
    std::cout << "Grouping " << instance.agents() << " jobs onto CMPs "
              << "shared " << group_size << " ways\n\n";

    auto report = [&](const char *title, const Grouping &grouping) {
        const auto penalties =
            trueGroupPenalties(instance, model, grouping);
        std::vector<double> demand;
        for (AgentId a = 0; a < instance.agents(); ++a)
            demand.push_back(
                catalog.job(instance.typeOf(a)).gbps);
        double total = 0.0, worst = 0.0;
        AgentId worst_agent = 0;
        for (AgentId a = 0; a < instance.agents(); ++a) {
            total += penalties[a];
            if (penalties[a] > worst) {
                worst = penalties[a];
                worst_agent = a;
            }
        }
        std::cout << title << ":\n  mean penalty "
                  << total / static_cast<double>(penalties.size())
                  << ", fairness (penalty vs demand) "
                  << spearman(demand, penalties) << "\n  worst off: "
                  << catalog.job(instance.typeOf(worst_agent)).name
                  << " at " << worst << "\n";

        // Show the three most contentious groups.
        std::vector<std::size_t> order(grouping.groups.size());
        for (std::size_t g = 0; g < order.size(); ++g)
            order[g] = g;
        auto group_penalty = [&](std::size_t g) {
            double acc = 0.0;
            for (AgentId a : grouping.groups[g])
                acc += penalties[a];
            return acc;
        };
        std::sort(order.begin(), order.end(),
                  [&](std::size_t x, std::size_t y) {
                      return group_penalty(x) > group_penalty(y);
                  });
        for (std::size_t k = 0; k < std::min<std::size_t>(3,
                                                          order.size());
             ++k) {
            std::cout << "  hot group " << k + 1 << ":";
            for (AgentId a : grouping.groups[order[k]])
                std::cout << " "
                          << catalog.job(instance.typeOf(a)).name;
            std::cout << "  (total "
                      << group_penalty(order[k]) << ")\n";
        }
        std::cout << "\n";
    };
    report("Hierarchical stable grouping", hier);
    report("Greedy demand packing", greedy);

    std::cout << "The hierarchical scheme concentrates contentious "
                 "jobs together (they\npay for the contention they "
                 "cause) while greedy packing spreads them\nacross "
                 "sensitive victims.\n";
    return 0;
}
