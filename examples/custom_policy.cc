/**
 * @file
 * Extending Cooper with a custom colocation policy.
 *
 * Implements RoundRobinPolicy — the naive "pair jobs in arrival
 * order" scheme — against the ColocationPolicy interface, then scores
 * it against the built-in policies on the three desiderata
 * (performance, fairness, stability). The point of the exercise: the
 * interface only asks for an assignment; the framework supplies
 * profiling, preference prediction, assessment, and dispatch.
 */

#include <iostream>

#include "core/experiment.hh"
#include "core/policies.hh"
#include "matching/blocking.hh"
#include "util/cli.hh"
#include "util/table.hh"

namespace {

using namespace cooper;

/** Pairs consecutive arrivals: the policy every datacenter starts
 *  with and the baseline any alternative must beat. */
class RoundRobinPolicy : public ColocationPolicy
{
  public:
    std::string name() const override { return "RR"; }

    Matching
    assign(const ColocationInstance &instance, Rng &rng) const override
    {
        const auto arrival = rng.permutation(instance.agents());
        Matching matching(instance.agents());
        for (std::size_t k = 0; k + 1 < arrival.size(); k += 2)
            matching.pair(arrival[k], arrival[k + 1]);
        return matching;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace cooper;

    CliFlags flags;
    flags.declare("agents", "400", "population size");
    flags.declare("seed", "3", "RNG seed");
    if (!flags.parse(argc, argv))
        return 0;

    const Catalog catalog = Catalog::paperTableI();
    const InterferenceModel model(catalog);
    Rng rng(static_cast<std::uint64_t>(flags.getInt("seed")));
    const auto instance = sampleInstance(
        catalog, model, static_cast<std::size_t>(flags.getInt("agents")),
        MixKind::Uniform, rng);

    std::cout << "Scoring policies on " << instance.agents()
              << " jobs (performance, fairness, stability):\n\n";

    std::vector<std::unique_ptr<ColocationPolicy>> policies =
        figurePolicies();
    policies.push_back(std::make_unique<RoundRobinPolicy>());

    Table table({"policy", "mean_penalty", "fairness_corr",
                 "blocking_pairs"});
    for (const auto &policy : policies) {
        Rng policy_rng(17);
        const PolicyRun run = runPolicy(*policy, instance, policy_rng);
        const auto rows = aggregateByType(instance, run.matching);
        const std::size_t blocking = countBlockingPairs(
            run.matching,
            [&](AgentId a, AgentId b) {
                return instance.trueDisutility(a, b);
            },
            0.0);
        table.addRow({policy->name(), Table::num(run.meanPenalty, 4),
                      Table::num(fairness(rows).rankCorrelation, 3),
                      Table::num(static_cast<long long>(blocking))});
    }
    table.print(std::cout);

    std::cout << "\nRR ignores contention and preferences alike: its "
                 "fairness correlation is\nmiddling by accident and its "
                 "blocking-pair count shows how many users\nwould "
                 "defect. Any custom policy plugged into "
                 "ColocationPolicy gets this\nscorecard for free.\n";
    return 0;
}
