# Empty dependencies file for bench_ablation_proposer.
# This may be replaced when dependencies are built.
