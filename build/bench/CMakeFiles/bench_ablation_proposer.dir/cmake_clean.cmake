file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_proposer.dir/bench_ablation_proposer.cc.o"
  "CMakeFiles/bench_ablation_proposer.dir/bench_ablation_proposer.cc.o.d"
  "bench_ablation_proposer"
  "bench_ablation_proposer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_proposer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
