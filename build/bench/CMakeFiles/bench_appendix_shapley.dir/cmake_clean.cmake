file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_shapley.dir/bench_appendix_shapley.cc.o"
  "CMakeFiles/bench_appendix_shapley.dir/bench_appendix_shapley.cc.o.d"
  "bench_appendix_shapley"
  "bench_appendix_shapley.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_shapley.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
