# Empty dependencies file for bench_appendix_shapley.
# This may be replaced when dependencies are built.
