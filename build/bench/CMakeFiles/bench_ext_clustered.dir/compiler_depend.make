# Empty compiler generated dependencies file for bench_ext_clustered.
# This may be replaced when dependencies are built.
