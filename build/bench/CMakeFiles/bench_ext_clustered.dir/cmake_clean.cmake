file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_clustered.dir/bench_ext_clustered.cc.o"
  "CMakeFiles/bench_ext_clustered.dir/bench_ext_clustered.cc.o.d"
  "bench_ext_clustered"
  "bench_ext_clustered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_clustered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
