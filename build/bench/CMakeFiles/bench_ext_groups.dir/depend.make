# Empty dependencies file for bench_ext_groups.
# This may be replaced when dependencies are built.
