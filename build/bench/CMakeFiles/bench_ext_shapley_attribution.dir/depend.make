# Empty dependencies file for bench_ext_shapley_attribution.
# This may be replaced when dependencies are built.
