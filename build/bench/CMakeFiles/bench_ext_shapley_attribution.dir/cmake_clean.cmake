file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_shapley_attribution.dir/bench_ext_shapley_attribution.cc.o"
  "CMakeFiles/bench_ext_shapley_attribution.dir/bench_ext_shapley_attribution.cc.o.d"
  "bench_ext_shapley_attribution"
  "bench_ext_shapley_attribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_shapley_attribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
