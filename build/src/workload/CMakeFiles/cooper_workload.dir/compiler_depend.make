# Empty compiler generated dependencies file for cooper_workload.
# This may be replaced when dependencies are built.
