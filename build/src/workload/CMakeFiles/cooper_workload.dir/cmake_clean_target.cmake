file(REMOVE_RECURSE
  "libcooper_workload.a"
)
