file(REMOVE_RECURSE
  "CMakeFiles/cooper_workload.dir/catalog.cc.o"
  "CMakeFiles/cooper_workload.dir/catalog.cc.o.d"
  "CMakeFiles/cooper_workload.dir/population.cc.o"
  "CMakeFiles/cooper_workload.dir/population.cc.o.d"
  "libcooper_workload.a"
  "libcooper_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooper_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
