# Empty compiler generated dependencies file for cooper_io.
# This may be replaced when dependencies are built.
