file(REMOVE_RECURSE
  "libcooper_io.a"
)
