file(REMOVE_RECURSE
  "CMakeFiles/cooper_io.dir/serialize.cc.o"
  "CMakeFiles/cooper_io.dir/serialize.cc.o.d"
  "libcooper_io.a"
  "libcooper_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooper_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
