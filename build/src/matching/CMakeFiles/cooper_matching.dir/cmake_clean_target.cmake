file(REMOVE_RECURSE
  "libcooper_matching.a"
)
