# Empty compiler generated dependencies file for cooper_matching.
# This may be replaced when dependencies are built.
