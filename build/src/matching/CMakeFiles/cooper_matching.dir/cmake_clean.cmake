file(REMOVE_RECURSE
  "CMakeFiles/cooper_matching.dir/blocking.cc.o"
  "CMakeFiles/cooper_matching.dir/blocking.cc.o.d"
  "CMakeFiles/cooper_matching.dir/matching.cc.o"
  "CMakeFiles/cooper_matching.dir/matching.cc.o.d"
  "CMakeFiles/cooper_matching.dir/preferences.cc.o"
  "CMakeFiles/cooper_matching.dir/preferences.cc.o.d"
  "CMakeFiles/cooper_matching.dir/stable_marriage.cc.o"
  "CMakeFiles/cooper_matching.dir/stable_marriage.cc.o.d"
  "CMakeFiles/cooper_matching.dir/stable_roommates.cc.o"
  "CMakeFiles/cooper_matching.dir/stable_roommates.cc.o.d"
  "libcooper_matching.a"
  "libcooper_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooper_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
