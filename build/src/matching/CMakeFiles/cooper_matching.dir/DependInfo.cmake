
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matching/blocking.cc" "src/matching/CMakeFiles/cooper_matching.dir/blocking.cc.o" "gcc" "src/matching/CMakeFiles/cooper_matching.dir/blocking.cc.o.d"
  "/root/repo/src/matching/matching.cc" "src/matching/CMakeFiles/cooper_matching.dir/matching.cc.o" "gcc" "src/matching/CMakeFiles/cooper_matching.dir/matching.cc.o.d"
  "/root/repo/src/matching/preferences.cc" "src/matching/CMakeFiles/cooper_matching.dir/preferences.cc.o" "gcc" "src/matching/CMakeFiles/cooper_matching.dir/preferences.cc.o.d"
  "/root/repo/src/matching/stable_marriage.cc" "src/matching/CMakeFiles/cooper_matching.dir/stable_marriage.cc.o" "gcc" "src/matching/CMakeFiles/cooper_matching.dir/stable_marriage.cc.o.d"
  "/root/repo/src/matching/stable_roommates.cc" "src/matching/CMakeFiles/cooper_matching.dir/stable_roommates.cc.o" "gcc" "src/matching/CMakeFiles/cooper_matching.dir/stable_roommates.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cooper_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
