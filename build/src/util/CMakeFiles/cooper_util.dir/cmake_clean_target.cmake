file(REMOVE_RECURSE
  "libcooper_util.a"
)
