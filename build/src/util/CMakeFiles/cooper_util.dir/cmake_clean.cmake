file(REMOVE_RECURSE
  "CMakeFiles/cooper_util.dir/chart.cc.o"
  "CMakeFiles/cooper_util.dir/chart.cc.o.d"
  "CMakeFiles/cooper_util.dir/cli.cc.o"
  "CMakeFiles/cooper_util.dir/cli.cc.o.d"
  "CMakeFiles/cooper_util.dir/rng.cc.o"
  "CMakeFiles/cooper_util.dir/rng.cc.o.d"
  "CMakeFiles/cooper_util.dir/table.cc.o"
  "CMakeFiles/cooper_util.dir/table.cc.o.d"
  "CMakeFiles/cooper_util.dir/thread_pool.cc.o"
  "CMakeFiles/cooper_util.dir/thread_pool.cc.o.d"
  "libcooper_util.a"
  "libcooper_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooper_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
