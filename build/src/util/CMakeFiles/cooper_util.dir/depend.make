# Empty dependencies file for cooper_util.
# This may be replaced when dependencies are built.
