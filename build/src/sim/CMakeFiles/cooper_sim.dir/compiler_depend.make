# Empty compiler generated dependencies file for cooper_sim.
# This may be replaced when dependencies are built.
