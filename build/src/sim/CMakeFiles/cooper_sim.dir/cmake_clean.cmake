file(REMOVE_RECURSE
  "CMakeFiles/cooper_sim.dir/cluster.cc.o"
  "CMakeFiles/cooper_sim.dir/cluster.cc.o.d"
  "CMakeFiles/cooper_sim.dir/interference.cc.o"
  "CMakeFiles/cooper_sim.dir/interference.cc.o.d"
  "CMakeFiles/cooper_sim.dir/profiler.cc.o"
  "CMakeFiles/cooper_sim.dir/profiler.cc.o.d"
  "libcooper_sim.a"
  "libcooper_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooper_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
