file(REMOVE_RECURSE
  "CMakeFiles/cooper_stats.dir/correlation.cc.o"
  "CMakeFiles/cooper_stats.dir/correlation.cc.o.d"
  "CMakeFiles/cooper_stats.dir/descriptive.cc.o"
  "CMakeFiles/cooper_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/cooper_stats.dir/kmeans.cc.o"
  "CMakeFiles/cooper_stats.dir/kmeans.cc.o.d"
  "libcooper_stats.a"
  "libcooper_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooper_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
