# Empty dependencies file for cooper_stats.
# This may be replaced when dependencies are built.
