file(REMOVE_RECURSE
  "libcooper_stats.a"
)
