
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/agent.cc" "src/core/CMakeFiles/cooper_core.dir/agent.cc.o" "gcc" "src/core/CMakeFiles/cooper_core.dir/agent.cc.o.d"
  "/root/repo/src/core/approx_policies.cc" "src/core/CMakeFiles/cooper_core.dir/approx_policies.cc.o" "gcc" "src/core/CMakeFiles/cooper_core.dir/approx_policies.cc.o.d"
  "/root/repo/src/core/coordinator.cc" "src/core/CMakeFiles/cooper_core.dir/coordinator.cc.o" "gcc" "src/core/CMakeFiles/cooper_core.dir/coordinator.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/cooper_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/cooper_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/framework.cc" "src/core/CMakeFiles/cooper_core.dir/framework.cc.o" "gcc" "src/core/CMakeFiles/cooper_core.dir/framework.cc.o.d"
  "/root/repo/src/core/groups.cc" "src/core/CMakeFiles/cooper_core.dir/groups.cc.o" "gcc" "src/core/CMakeFiles/cooper_core.dir/groups.cc.o.d"
  "/root/repo/src/core/instance.cc" "src/core/CMakeFiles/cooper_core.dir/instance.cc.o" "gcc" "src/core/CMakeFiles/cooper_core.dir/instance.cc.o.d"
  "/root/repo/src/core/policies.cc" "src/core/CMakeFiles/cooper_core.dir/policies.cc.o" "gcc" "src/core/CMakeFiles/cooper_core.dir/policies.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/cooper_core.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/cooper_core.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/game/CMakeFiles/cooper_game.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/cooper_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cooper_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cf/CMakeFiles/cooper_cf.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cooper_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cooper_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cooper_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
