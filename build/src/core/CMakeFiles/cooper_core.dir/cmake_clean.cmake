file(REMOVE_RECURSE
  "CMakeFiles/cooper_core.dir/agent.cc.o"
  "CMakeFiles/cooper_core.dir/agent.cc.o.d"
  "CMakeFiles/cooper_core.dir/approx_policies.cc.o"
  "CMakeFiles/cooper_core.dir/approx_policies.cc.o.d"
  "CMakeFiles/cooper_core.dir/coordinator.cc.o"
  "CMakeFiles/cooper_core.dir/coordinator.cc.o.d"
  "CMakeFiles/cooper_core.dir/experiment.cc.o"
  "CMakeFiles/cooper_core.dir/experiment.cc.o.d"
  "CMakeFiles/cooper_core.dir/framework.cc.o"
  "CMakeFiles/cooper_core.dir/framework.cc.o.d"
  "CMakeFiles/cooper_core.dir/groups.cc.o"
  "CMakeFiles/cooper_core.dir/groups.cc.o.d"
  "CMakeFiles/cooper_core.dir/instance.cc.o"
  "CMakeFiles/cooper_core.dir/instance.cc.o.d"
  "CMakeFiles/cooper_core.dir/policies.cc.o"
  "CMakeFiles/cooper_core.dir/policies.cc.o.d"
  "CMakeFiles/cooper_core.dir/scheduler.cc.o"
  "CMakeFiles/cooper_core.dir/scheduler.cc.o.d"
  "libcooper_core.a"
  "libcooper_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooper_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
