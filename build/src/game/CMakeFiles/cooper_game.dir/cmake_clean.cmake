file(REMOVE_RECURSE
  "CMakeFiles/cooper_game.dir/colocation_game.cc.o"
  "CMakeFiles/cooper_game.dir/colocation_game.cc.o.d"
  "CMakeFiles/cooper_game.dir/fairness.cc.o"
  "CMakeFiles/cooper_game.dir/fairness.cc.o.d"
  "CMakeFiles/cooper_game.dir/shapley.cc.o"
  "CMakeFiles/cooper_game.dir/shapley.cc.o.d"
  "libcooper_game.a"
  "libcooper_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooper_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
