# Empty compiler generated dependencies file for cooper_game.
# This may be replaced when dependencies are built.
