file(REMOVE_RECURSE
  "libcooper_game.a"
)
