file(REMOVE_RECURSE
  "CMakeFiles/cooper_cf.dir/accuracy.cc.o"
  "CMakeFiles/cooper_cf.dir/accuracy.cc.o.d"
  "CMakeFiles/cooper_cf.dir/item_knn.cc.o"
  "CMakeFiles/cooper_cf.dir/item_knn.cc.o.d"
  "CMakeFiles/cooper_cf.dir/sparse_matrix.cc.o"
  "CMakeFiles/cooper_cf.dir/sparse_matrix.cc.o.d"
  "CMakeFiles/cooper_cf.dir/subsample.cc.o"
  "CMakeFiles/cooper_cf.dir/subsample.cc.o.d"
  "libcooper_cf.a"
  "libcooper_cf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooper_cf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
