
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cf/accuracy.cc" "src/cf/CMakeFiles/cooper_cf.dir/accuracy.cc.o" "gcc" "src/cf/CMakeFiles/cooper_cf.dir/accuracy.cc.o.d"
  "/root/repo/src/cf/item_knn.cc" "src/cf/CMakeFiles/cooper_cf.dir/item_knn.cc.o" "gcc" "src/cf/CMakeFiles/cooper_cf.dir/item_knn.cc.o.d"
  "/root/repo/src/cf/sparse_matrix.cc" "src/cf/CMakeFiles/cooper_cf.dir/sparse_matrix.cc.o" "gcc" "src/cf/CMakeFiles/cooper_cf.dir/sparse_matrix.cc.o.d"
  "/root/repo/src/cf/subsample.cc" "src/cf/CMakeFiles/cooper_cf.dir/subsample.cc.o" "gcc" "src/cf/CMakeFiles/cooper_cf.dir/subsample.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cooper_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
