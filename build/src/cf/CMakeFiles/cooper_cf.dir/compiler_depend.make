# Empty compiler generated dependencies file for cooper_cf.
# This may be replaced when dependencies are built.
