file(REMOVE_RECURSE
  "libcooper_cf.a"
)
