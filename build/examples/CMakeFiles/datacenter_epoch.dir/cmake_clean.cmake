file(REMOVE_RECURSE
  "CMakeFiles/datacenter_epoch.dir/datacenter_epoch.cc.o"
  "CMakeFiles/datacenter_epoch.dir/datacenter_epoch.cc.o.d"
  "datacenter_epoch"
  "datacenter_epoch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_epoch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
