# Empty dependencies file for datacenter_epoch.
# This may be replaced when dependencies are built.
