# Empty compiler generated dependencies file for strategic_users.
# This may be replaced when dependencies are built.
