file(REMOVE_RECURSE
  "CMakeFiles/strategic_users.dir/strategic_users.cc.o"
  "CMakeFiles/strategic_users.dir/strategic_users.cc.o.d"
  "strategic_users"
  "strategic_users.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategic_users.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
