# Empty dependencies file for arrival_stream.
# This may be replaced when dependencies are built.
