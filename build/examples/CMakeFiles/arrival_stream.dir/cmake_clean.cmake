file(REMOVE_RECURSE
  "CMakeFiles/arrival_stream.dir/arrival_stream.cc.o"
  "CMakeFiles/arrival_stream.dir/arrival_stream.cc.o.d"
  "arrival_stream"
  "arrival_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrival_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
