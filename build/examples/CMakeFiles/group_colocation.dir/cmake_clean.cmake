file(REMOVE_RECURSE
  "CMakeFiles/group_colocation.dir/group_colocation.cc.o"
  "CMakeFiles/group_colocation.dir/group_colocation.cc.o.d"
  "group_colocation"
  "group_colocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
