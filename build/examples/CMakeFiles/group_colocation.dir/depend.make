# Empty dependencies file for group_colocation.
# This may be replaced when dependencies are built.
