
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_determinism.cc" "tests/CMakeFiles/cooper_tsan_tests.dir/test_determinism.cc.o" "gcc" "tests/CMakeFiles/cooper_tsan_tests.dir/test_determinism.cc.o.d"
  "/root/repo/tests/test_thread_pool.cc" "tests/CMakeFiles/cooper_tsan_tests.dir/test_thread_pool.cc.o" "gcc" "tests/CMakeFiles/cooper_tsan_tests.dir/test_thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cooper_core.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/cooper_io.dir/DependInfo.cmake"
  "/root/repo/build/src/game/CMakeFiles/cooper_game.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/cooper_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cooper_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cf/CMakeFiles/cooper_cf.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cooper_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cooper_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cooper_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
