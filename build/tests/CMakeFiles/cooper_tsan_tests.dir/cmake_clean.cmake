file(REMOVE_RECURSE
  "CMakeFiles/cooper_tsan_tests.dir/test_determinism.cc.o"
  "CMakeFiles/cooper_tsan_tests.dir/test_determinism.cc.o.d"
  "CMakeFiles/cooper_tsan_tests.dir/test_thread_pool.cc.o"
  "CMakeFiles/cooper_tsan_tests.dir/test_thread_pool.cc.o.d"
  "cooper_tsan_tests"
  "cooper_tsan_tests.pdb"
  "cooper_tsan_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooper_tsan_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
