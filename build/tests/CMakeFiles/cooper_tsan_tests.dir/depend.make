# Empty dependencies file for cooper_tsan_tests.
# This may be replaced when dependencies are built.
