# Empty compiler generated dependencies file for cooper_tests.
# This may be replaced when dependencies are built.
