
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_accuracy.cc" "tests/CMakeFiles/cooper_tests.dir/test_accuracy.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_accuracy.cc.o.d"
  "/root/repo/tests/test_agent.cc" "tests/CMakeFiles/cooper_tests.dir/test_agent.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_agent.cc.o.d"
  "/root/repo/tests/test_approx_policies.cc" "tests/CMakeFiles/cooper_tests.dir/test_approx_policies.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_approx_policies.cc.o.d"
  "/root/repo/tests/test_blocking.cc" "tests/CMakeFiles/cooper_tests.dir/test_blocking.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_blocking.cc.o.d"
  "/root/repo/tests/test_catalog.cc" "tests/CMakeFiles/cooper_tests.dir/test_catalog.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_catalog.cc.o.d"
  "/root/repo/tests/test_chaos.cc" "tests/CMakeFiles/cooper_tests.dir/test_chaos.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_chaos.cc.o.d"
  "/root/repo/tests/test_chart.cc" "tests/CMakeFiles/cooper_tests.dir/test_chart.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_chart.cc.o.d"
  "/root/repo/tests/test_cli.cc" "tests/CMakeFiles/cooper_tests.dir/test_cli.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_cli.cc.o.d"
  "/root/repo/tests/test_cluster.cc" "tests/CMakeFiles/cooper_tests.dir/test_cluster.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_cluster.cc.o.d"
  "/root/repo/tests/test_colocation_game.cc" "tests/CMakeFiles/cooper_tests.dir/test_colocation_game.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_colocation_game.cc.o.d"
  "/root/repo/tests/test_coordinator.cc" "tests/CMakeFiles/cooper_tests.dir/test_coordinator.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_coordinator.cc.o.d"
  "/root/repo/tests/test_correlation.cc" "tests/CMakeFiles/cooper_tests.dir/test_correlation.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_correlation.cc.o.d"
  "/root/repo/tests/test_descriptive.cc" "tests/CMakeFiles/cooper_tests.dir/test_descriptive.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_descriptive.cc.o.d"
  "/root/repo/tests/test_determinism.cc" "tests/CMakeFiles/cooper_tests.dir/test_determinism.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_determinism.cc.o.d"
  "/root/repo/tests/test_error.cc" "tests/CMakeFiles/cooper_tests.dir/test_error.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_error.cc.o.d"
  "/root/repo/tests/test_experiment.cc" "tests/CMakeFiles/cooper_tests.dir/test_experiment.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_experiment.cc.o.d"
  "/root/repo/tests/test_fairness.cc" "tests/CMakeFiles/cooper_tests.dir/test_fairness.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_fairness.cc.o.d"
  "/root/repo/tests/test_framework.cc" "tests/CMakeFiles/cooper_tests.dir/test_framework.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_framework.cc.o.d"
  "/root/repo/tests/test_groups.cc" "tests/CMakeFiles/cooper_tests.dir/test_groups.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_groups.cc.o.d"
  "/root/repo/tests/test_instance.cc" "tests/CMakeFiles/cooper_tests.dir/test_instance.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_instance.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/cooper_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_interference.cc" "tests/CMakeFiles/cooper_tests.dir/test_interference.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_interference.cc.o.d"
  "/root/repo/tests/test_item_knn.cc" "tests/CMakeFiles/cooper_tests.dir/test_item_knn.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_item_knn.cc.o.d"
  "/root/repo/tests/test_kmeans.cc" "tests/CMakeFiles/cooper_tests.dir/test_kmeans.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_kmeans.cc.o.d"
  "/root/repo/tests/test_matching_type.cc" "tests/CMakeFiles/cooper_tests.dir/test_matching_type.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_matching_type.cc.o.d"
  "/root/repo/tests/test_model_properties.cc" "tests/CMakeFiles/cooper_tests.dir/test_model_properties.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_model_properties.cc.o.d"
  "/root/repo/tests/test_online.cc" "tests/CMakeFiles/cooper_tests.dir/test_online.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_online.cc.o.d"
  "/root/repo/tests/test_policies.cc" "tests/CMakeFiles/cooper_tests.dir/test_policies.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_policies.cc.o.d"
  "/root/repo/tests/test_population.cc" "tests/CMakeFiles/cooper_tests.dir/test_population.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_population.cc.o.d"
  "/root/repo/tests/test_preferences.cc" "tests/CMakeFiles/cooper_tests.dir/test_preferences.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_preferences.cc.o.d"
  "/root/repo/tests/test_profiler.cc" "tests/CMakeFiles/cooper_tests.dir/test_profiler.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_profiler.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/cooper_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_properties_system.cc" "tests/CMakeFiles/cooper_tests.dir/test_properties_system.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_properties_system.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/cooper_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_roommates_instances.cc" "tests/CMakeFiles/cooper_tests.dir/test_roommates_instances.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_roommates_instances.cc.o.d"
  "/root/repo/tests/test_scheduler.cc" "tests/CMakeFiles/cooper_tests.dir/test_scheduler.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_scheduler.cc.o.d"
  "/root/repo/tests/test_serialize.cc" "tests/CMakeFiles/cooper_tests.dir/test_serialize.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_serialize.cc.o.d"
  "/root/repo/tests/test_shapley.cc" "tests/CMakeFiles/cooper_tests.dir/test_shapley.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_shapley.cc.o.d"
  "/root/repo/tests/test_sparse_matrix.cc" "tests/CMakeFiles/cooper_tests.dir/test_sparse_matrix.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_sparse_matrix.cc.o.d"
  "/root/repo/tests/test_stable_marriage.cc" "tests/CMakeFiles/cooper_tests.dir/test_stable_marriage.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_stable_marriage.cc.o.d"
  "/root/repo/tests/test_stable_roommates.cc" "tests/CMakeFiles/cooper_tests.dir/test_stable_roommates.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_stable_roommates.cc.o.d"
  "/root/repo/tests/test_subsample.cc" "tests/CMakeFiles/cooper_tests.dir/test_subsample.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_subsample.cc.o.d"
  "/root/repo/tests/test_table.cc" "tests/CMakeFiles/cooper_tests.dir/test_table.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_table.cc.o.d"
  "/root/repo/tests/test_thread_pool.cc" "tests/CMakeFiles/cooper_tests.dir/test_thread_pool.cc.o" "gcc" "tests/CMakeFiles/cooper_tests.dir/test_thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cooper_core.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/cooper_io.dir/DependInfo.cmake"
  "/root/repo/build/src/game/CMakeFiles/cooper_game.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/cooper_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cooper_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cf/CMakeFiles/cooper_cf.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cooper_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cooper_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cooper_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
