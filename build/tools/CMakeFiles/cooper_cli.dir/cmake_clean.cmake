file(REMOVE_RECURSE
  "CMakeFiles/cooper_cli.dir/cooper_cli.cc.o"
  "CMakeFiles/cooper_cli.dir/cooper_cli.cc.o.d"
  "cooper_cli"
  "cooper_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooper_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
