# Empty compiler generated dependencies file for cooper_cli.
# This may be replaced when dependencies are built.
